//! Views: uniform DataFrames over one run's multi-source data, plus the
//! fused task↔I/O view.
//!
//! The load-bearing join (paper §III-E3, §V): Darshan DXT records carry
//! `(host, pthread id, timestamps)`; Dask task records carry
//! `(worker, pthread id, start, stop)`. An I/O record belongs to the task
//! that was executing on that thread at that moment. Without the authors'
//! pthread-id extension this join is impossible — `task_io` on a
//! vanilla-DXT run returns no matches, which is exactly the
//! interoperability gap the paper calls out.

use std::collections::HashMap;

use dtf_core::ids::{TaskKey, ThreadId};
use dtf_core::table::Value;
use dtf_core::time::Time;
use dtf_wms::RunData;

use crate::frame::DataFrame;

/// Lazily built DataFrame views over one run.
pub struct RunViews<'a> {
    pub data: &'a RunData,
}

impl<'a> RunViews<'a> {
    pub fn new(data: &'a RunData) -> Self {
        Self { data }
    }

    /// Completed tasks (key, group, prefix, graph, worker, host, thread,
    /// start/stop/duration, nbytes).
    pub fn tasks(&self) -> DataFrame {
        DataFrame::from_tabular(&self.data.task_done)
    }

    /// Task metadata at submission (key, deps count, client, graph).
    pub fn meta(&self) -> DataFrame {
        DataFrame::from_tabular(&self.data.meta)
    }

    /// All task state transitions.
    pub fn transitions(&self) -> DataFrame {
        DataFrame::from_tabular(&self.data.transitions)
    }

    /// Worker-side task state transitions (waiting/fetch/flight/ready/
    /// executing/memory).
    pub fn worker_transitions(&self) -> DataFrame {
        DataFrame::from_tabular(&self.data.worker_transitions)
    }

    /// Inter-worker communications.
    pub fn comms(&self) -> DataFrame {
        DataFrame::from_tabular(&self.data.comms)
    }

    /// Traced I/O operations across all workers' Darshan logs.
    pub fn io(&self) -> DataFrame {
        let records: Vec<_> = self.data.darshan.all_records().cloned().collect();
        DataFrame::from_tabular(&records)
    }

    /// Runtime warnings.
    pub fn warnings(&self) -> DataFrame {
        DataFrame::from_tabular(&self.data.warnings)
    }

    /// The fused task↔I/O view: every traced I/O operation attributed to
    /// the task that issued it, joined on `(pthread id, time interval)`.
    /// I/O that matches no task (e.g. thread ids scrubbed by vanilla DXT)
    /// gets a `Null` key.
    pub fn task_io(&self) -> DataFrame {
        // index tasks by thread, sorted by start time
        let mut by_thread: HashMap<ThreadId, Vec<(Time, Time, &TaskKey)>> = HashMap::new();
        for d in &self.data.task_done {
            by_thread.entry(d.thread).or_default().push((d.start, d.stop, &d.key));
        }
        for v in by_thread.values_mut() {
            v.sort_by_key(|(s, _, _)| *s);
        }
        let mut df = self.io();
        let starts = df.col_f64("start_s").expect("io view has start_s");
        let threads: Vec<u64> = df
            .col("thread")
            .expect("io view has thread")
            .iter()
            .map(|v| v.as_u64().unwrap_or(0))
            .collect();
        let mut keys = Vec::with_capacity(df.n_rows());
        let mut prefixes = Vec::with_capacity(df.n_rows());
        for i in 0..df.n_rows() {
            let t = Time::from_secs_f64(starts[i]);
            let found = by_thread.get(&ThreadId(threads[i])).and_then(|intervals| {
                // last interval starting at or before t
                let idx = intervals.partition_point(|(s, _, _)| *s <= t);
                intervals[..idx].iter().rev().find(|(_, stop, _)| *stop >= t)
            });
            match found {
                Some((_, _, key)) => {
                    keys.push(Value::Str(key.to_string()));
                    prefixes.push(Value::Str(key.prefix.as_str().to_string()));
                }
                None => {
                    keys.push(Value::Null);
                    prefixes.push(Value::Null);
                }
            }
        }
        df.with_column("key", |i| keys[i].clone());
        df.with_column("prefix", |i| prefixes[i].clone());
        df
    }

    /// Fraction of traced I/O operations successfully attributed to a task
    /// by [`Self::task_io`]; 1.0 with the pthread-id extension, ~0 without.
    pub fn io_attribution_rate(&self) -> f64 {
        let df = self.task_io();
        if df.is_empty() {
            return 0.0;
        }
        let matched = df
            .col("key")
            .expect("task_io has key")
            .iter()
            .filter(|v| !matches!(v, Value::Null))
            .count();
        matched as f64 / df.n_rows() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::ids::{GraphId, RunId};
    use dtf_core::time::Dur;
    use dtf_wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
    use dtf_wms::{GraphBuilder, IoCall, SimAction};
    use std::collections::HashSet;

    fn run_with_io(dxt: dtf_darshan::DxtConfig) -> RunData {
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        for i in 0..12u32 {
            b.add_sim(
                "load",
                tok,
                i,
                vec![],
                SimAction {
                    compute: Dur::from_millis_f64(30.0),
                    io: vec![IoCall::read(dtf_core::ids::FileId(0), i as u64 * 1024, 1024)],
                    output_nbytes: 1024,
                    stall_rate: 0.0,
                },
            );
        }
        let wf = SimWorkflow {
            name: "views-test".into(),
            graphs: vec![b.build(&HashSet::new()).unwrap()],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(1.0),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![("/f".into(), 1 << 20, 1)],
        };
        let cfg = SimConfig { run: RunId(0), dxt, ..Default::default() };
        SimCluster::new(cfg).unwrap().run(wf).unwrap()
    }

    #[test]
    fn views_have_expected_shapes() {
        let data = run_with_io(dtf_darshan::DxtConfig::default());
        let v = RunViews::new(&data);
        assert_eq!(v.tasks().n_rows(), 12);
        assert_eq!(v.meta().n_rows(), 12);
        assert!(v.transitions().n_rows() >= 36);
        // each task: ready + executing + memory worker-side observations
        assert!(v.worker_transitions().n_rows() >= 36);
        // 12 reads + 12 opens + 12 closes
        assert_eq!(v.io().n_rows(), 36);
    }

    #[test]
    fn queue_waits_are_nonnegative_and_complete() {
        let data = run_with_io(dtf_darshan::DxtConfig::default());
        let waits = data.queue_waits();
        assert_eq!(waits.len(), 12, "every executed task has a ready->executing wait");
        for (_, w) in &waits {
            assert!(w.0 < 10_000_000_000, "waits are bounded in this tiny run");
        }
    }

    #[test]
    fn task_io_attributes_every_op_with_thread_ids() {
        let data = run_with_io(dtf_darshan::DxtConfig::default());
        let v = RunViews::new(&data);
        assert!((v.io_attribution_rate() - 1.0).abs() < 1e-9);
        // reads map to load tasks
        let fused = v.task_io();
        let fused = fused.filter("op", |o| o.as_str() == Some("read")).unwrap();
        for p in fused.col("prefix").unwrap() {
            assert_eq!(p.as_str(), Some("load"));
        }
    }

    #[test]
    fn vanilla_dxt_breaks_the_join() {
        // the ablation the paper motivates: without pthread ids, Darshan
        // records cannot be correlated with tasks
        let data = run_with_io(dtf_darshan::DxtConfig::vanilla());
        let v = RunViews::new(&data);
        assert_eq!(v.io_attribution_rate(), 0.0);
    }
}
