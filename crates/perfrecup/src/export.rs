//! FAIR archival export (paper §V: "we have stored the data and metadata
//! in a unique tabular format, with at least one common identifier between
//! every two different data sources").
//!
//! Writes one run's complete characterization data to a directory:
//! every view as CSV (the common tabular format), the provenance chart and
//! run manifest as JSON, and the Darshan logs in their binary format.

use std::io::Write as _;
use std::path::Path;

use dtf_core::error::{DtfError, Result};
use dtf_wms::RunData;

use crate::views::RunViews;

/// Files written by [`export_run`].
pub const CSV_VIEWS: [&str; 7] = [
    "tasks.csv",
    "task_meta.csv",
    "transitions.csv",
    "worker_transitions.csv",
    "comms.csv",
    "io.csv",
    "warnings.csv",
];

fn write(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut f = std::fs::File::create(path)
        .map_err(|e| DtfError::Io(format!("create {}: {e}", path.display())))?;
    f.write_all(bytes).map_err(|e| DtfError::Io(format!("write {}: {e}", path.display())))
}

/// Export everything collected from `data` into `dir` (created if absent).
/// Returns the number of files written.
pub fn export_run(data: &RunData, dir: &Path) -> Result<usize> {
    std::fs::create_dir_all(dir)
        .map_err(|e| DtfError::Io(format!("mkdir {}: {e}", dir.display())))?;
    let views = RunViews::new(data);
    let mut written = 0;

    for (name, df) in [
        ("tasks.csv", views.tasks()),
        ("task_meta.csv", views.meta()),
        ("transitions.csv", views.transitions()),
        ("worker_transitions.csv", views.worker_transitions()),
        ("comms.csv", views.comms()),
        ("io.csv", views.io()),
        ("warnings.csv", views.warnings()),
    ] {
        write(&dir.join(name), df.to_csv().as_bytes())?;
        written += 1;
    }

    // the fused task<->I/O view, the paper's headline join
    write(&dir.join("task_io.csv"), views.task_io().to_csv().as_bytes())?;
    written += 1;

    // provenance chart (layers 1-2) and run manifest
    write(
        &dir.join("provenance_chart.json"),
        serde_json::to_string_pretty(&data.chart)?.as_bytes(),
    )?;
    written += 1;
    let manifest = serde_json::json!({
        "run": data.run.to_string(),
        "workflow": data.workflow,
        "wall_time_s": data.wall_time.as_secs_f64(),
        "distinct_tasks": data.distinct_tasks(),
        "task_graphs": data.task_graphs(),
        "distinct_files": data.distinct_files(),
        "io_ops_traced": data.io_ops(),
        "io_ops_complete": data.io_ops_complete(),
        "communications": data.comm_count(),
        "warnings": data.warnings.len(),
        "steals": data.steals,
        "dxt_truncated": data.darshan.any_truncated(),
        "identifiers": {
            "tasks": ["key", "worker", "thread", "start_s", "stop_s"],
            "io": ["host", "thread", "start_s", "stop_s"],
            "comms": ["key", "from", "to"],
            "workers": ["address", "host"],
        },
    });
    write(&dir.join("manifest.json"), serde_json::to_string_pretty(&manifest)?.as_bytes())?;
    written += 1;

    // per-process Darshan logs in their binary format
    for log in &data.darshan.logs {
        let name = format!("darshan_{}.dtflog", log.header.worker.address().replace(':', "_"));
        write(&dir.join(name), &log.to_bytes())?;
        written += 1;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::ids::{GraphId, RunId};
    use dtf_core::time::Dur;
    use dtf_darshan::log::DarshanLog;
    use dtf_wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
    use dtf_wms::{GraphBuilder, IoCall, SimAction};

    fn run() -> RunData {
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        for i in 0..5u32 {
            b.add_sim(
                "load",
                tok,
                i,
                vec![],
                SimAction {
                    compute: Dur::from_millis_f64(20.0),
                    io: vec![IoCall::read(dtf_core::ids::FileId(0), 0, 4096)],
                    output_nbytes: 1024,
                    stall_rate: 0.0,
                },
            );
        }
        let wf = SimWorkflow {
            name: "export-test".into(),
            graphs: vec![b.build(&Default::default()).unwrap()],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(0.5),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![("/f".into(), 1 << 20, 1)],
        };
        SimCluster::new(SimConfig { campaign_seed: 9, run: RunId(0), ..Default::default() })
            .unwrap()
            .run(wf)
            .unwrap()
    }

    #[test]
    fn export_writes_complete_bundle() {
        let data = run();
        let dir = std::env::temp_dir().join(format!("dtf-export-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let n = export_run(&data, &dir).unwrap();
        // 7 views + task_io + chart + manifest + 8 worker logs
        assert_eq!(n, 18);
        for f in CSV_VIEWS {
            let content = std::fs::read_to_string(dir.join(f)).unwrap();
            assert!(content.lines().count() >= 1, "{f} has a header");
        }
        // tasks.csv has 5 rows + header
        let tasks = std::fs::read_to_string(dir.join("tasks.csv")).unwrap();
        assert_eq!(tasks.lines().count(), 6);
        // manifest fields
        let manifest: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(dir.join("manifest.json")).unwrap())
                .unwrap();
        assert_eq!(manifest["distinct_tasks"], 5);
        assert_eq!(manifest["workflow"], "export-test");
        // binary darshan logs parse back
        let any_log = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".dtflog"))
            .expect("darshan log written");
        let bytes = std::fs::read(any_log.path()).unwrap();
        assert!(DarshanLog::from_bytes(&bytes).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
