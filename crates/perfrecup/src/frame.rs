//! A small typed columnar DataFrame — the pandas substitute underneath the
//! analysis views. Supports projection, filtering, sorting, inner joins on
//! shared identifier columns, and grouped aggregation; exactly the
//! operations the paper's analyses need.

use std::collections::HashMap;
use std::fmt;

use dtf_core::error::{DtfError, Result};
use dtf_core::table::{AccKind, Accumulator, Tabular, Value, ValueKey};

/// Column-major table with string column names.
///
/// ```
/// use dtf_perfrecup::frame::{Agg, DataFrame};
/// use dtf_core::table::Value;
///
/// let mut df = DataFrame::new(vec!["worker".into(), "duration".into()]);
/// df.push_row(vec![Value::Str("w0".into()), Value::F64(1.5)]).unwrap();
/// df.push_row(vec![Value::Str("w0".into()), Value::F64(2.5)]).unwrap();
/// df.push_row(vec![Value::Str("w1".into()), Value::F64(4.0)]).unwrap();
///
/// let by_worker = df.group_by("worker", "duration", Agg::Mean).unwrap();
/// assert_eq!(by_worker.col_f64("duration_mean").unwrap(), vec![2.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Vec<Value>>,
}

/// Aggregations for [`DataFrame::group_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    Count,
    Sum,
    Mean,
    Min,
    Max,
}

impl DataFrame {
    pub fn new(names: Vec<String>) -> Self {
        let columns = names.iter().map(|_| Vec::new()).collect();
        Self { names, columns }
    }

    /// Build from any slice of records in the common tabular format.
    pub fn from_tabular<T: Tabular>(records: &[T]) -> Self {
        let names: Vec<String> = T::schema().into_iter().map(str::to_string).collect();
        let mut df = DataFrame::new(names);
        df.reserve(records.len());
        for r in records {
            df.push_row(r.row()).expect("schema-conforming row");
        }
        df
    }

    /// Reserve capacity for `additional` more rows in every column.
    pub fn reserve(&mut self, additional: usize) {
        for col in &mut self.columns {
            col.reserve(additional);
        }
    }

    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    pub fn n_cols(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    pub fn names(&self) -> &[String] {
        &self.names
    }

    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.names.len() {
            return Err(DtfError::Config(format!(
                "row width {} != {} columns",
                row.len(),
                self.names.len()
            )));
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        Ok(())
    }

    fn col_index(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| DtfError::NotFound(format!("column {name}")))
    }

    /// A column by name.
    pub fn col(&self, name: &str) -> Result<&[Value]> {
        Ok(&self.columns[self.col_index(name)?])
    }

    /// Numeric view of a column (non-numeric cells skipped).
    pub fn col_f64(&self, name: &str) -> Result<Vec<f64>> {
        Ok(self.col(name)?.iter().filter_map(Value::as_f64).collect())
    }

    /// One row by index.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[i].clone()).collect()
    }

    /// Keep only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut out = DataFrame::new(names.iter().map(|s| s.to_string()).collect());
        let idx: Vec<usize> = names.iter().map(|n| self.col_index(n)).collect::<Result<_>>()?;
        out.columns = idx.iter().map(|&i| self.columns[i].clone()).collect();
        Ok(out)
    }

    /// Rows where `pred(row_value_of(col))` holds.
    pub fn filter<F: Fn(&Value) -> bool>(&self, col: &str, pred: F) -> Result<DataFrame> {
        let ci = self.col_index(col)?;
        let keep: Vec<usize> =
            self.columns[ci].iter().enumerate().filter(|(_, v)| pred(v)).map(|(i, _)| i).collect();
        Ok(self.take(&keep))
    }

    fn take(&self, rows: &[usize]) -> DataFrame {
        DataFrame {
            names: self.names.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| rows.iter().map(|&i| c[i].clone()).collect())
                .collect(),
        }
    }

    /// Stable sort by a column, ascending ([`Value::cmp_total`] order).
    pub fn sort_by(&self, col: &str) -> Result<DataFrame> {
        let ci = self.col_index(col)?;
        // extract each cell's typed key once instead of re-matching the
        // Value variants on every comparison; cmp_sort preserves
        // cmp_total's verdicts exactly, so the stable sort is unchanged
        let keys: Vec<ValueKey<'_>> = self.columns[ci].iter().map(Value::key).collect();
        let mut order: Vec<usize> = (0..self.n_rows()).collect();
        order.sort_by(|&a, &b| keys[a].cmp_sort(&keys[b]));
        Ok(self.take(&order))
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> DataFrame {
        let rows: Vec<usize> = (0..self.n_rows().min(n)).collect();
        self.take(&rows)
    }

    /// Inner join on `self[left_on] == other[right_on]`. Columns of `other`
    /// are suffixed with `_r` when they collide.
    pub fn inner_join(
        &self,
        other: &DataFrame,
        left_on: &str,
        right_on: &str,
    ) -> Result<DataFrame> {
        let li = self.col_index(left_on)?;
        let ri = other.col_index(right_on)?;
        // hash the right side by the borrowed typed key — zero per-row
        // string rendering (the old code allocated a display-form String
        // for every row of both sides)
        let mut index: HashMap<ValueKey<'_>, Vec<usize>> = HashMap::with_capacity(other.n_rows());
        for (i, v) in other.columns[ri].iter().enumerate() {
            index.entry(v.key()).or_default().push(i);
        }
        let mut names = self.names.clone();
        for (j, n) in other.names.iter().enumerate() {
            if j == ri {
                continue;
            }
            if names.contains(n) {
                names.push(format!("{n}_r"));
            } else {
                names.push(n.clone());
            }
        }
        // probe pass: collect the (left, right) row pairs so every output
        // column can be assembled column-major with exact capacity
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for i in 0..self.n_rows() {
            if let Some(matches) = index.get(&self.columns[li][i].key()) {
                pairs.extend(matches.iter().map(|&j| (i, j)));
            }
        }
        let mut out = DataFrame::new(names);
        for (ci, col) in self.columns.iter().enumerate() {
            let mut vals = Vec::with_capacity(pairs.len());
            vals.extend(pairs.iter().map(|&(i, _)| col[i].clone()));
            out.columns[ci] = vals;
        }
        for (cj, col) in other.columns.iter().enumerate().filter(|&(cj, _)| cj != ri) {
            let mut vals = Vec::with_capacity(pairs.len());
            vals.extend(pairs.iter().map(|&(_, j)| col[j].clone()));
            let oi = self.columns.len() + if cj < ri { cj } else { cj - 1 };
            out.columns[oi] = vals;
        }
        Ok(out)
    }

    /// Group by a key column and aggregate a value column.
    /// Returns a frame with columns `[key, agg]`, ordered by key
    /// ([`Value::cmp_total`] order; string keys sort exactly as before,
    /// numeric keys sort numerically rather than by their rendered digits).
    pub fn group_by(&self, key: &str, value: &str, agg: Agg) -> Result<DataFrame> {
        let ki = self.col_index(key)?;
        let vi = self.col_index(value)?;
        // keyed by the borrowed typed key; the first-seen row index stands
        // in for the cloned key Value the old String-keyed table carried
        let mut groups: HashMap<ValueKey<'_>, (usize, Vec<f64>)> = HashMap::new();
        for i in 0..self.n_rows() {
            let entry = groups.entry(self.columns[ki][i].key()).or_insert_with(|| (i, Vec::new()));
            if let Some(x) = self.columns[vi][i].as_f64() {
                entry.1.push(x);
            } else if agg == Agg::Count {
                entry.1.push(0.0); // counting non-numeric rows still counts
            }
        }
        let mut keys: Vec<&ValueKey<'_>> = groups.keys().collect();
        keys.sort(); // Ord: cmp_total order with exact-payload tiebreak
        let agg_name = match agg {
            Agg::Count => "count",
            Agg::Sum => "sum",
            Agg::Mean => "mean",
            Agg::Min => "min",
            Agg::Max => "max",
        };
        let mut out = DataFrame::new(vec![key.to_string(), format!("{value}_{agg_name}")]);
        out.reserve(keys.len());
        for k in keys {
            let (first_row, vals) = &groups[k];
            let kv = &self.columns[ki][*first_row];
            let v = match agg {
                Agg::Count => Value::U64(vals.len() as u64),
                Agg::Sum => Value::F64(vals.iter().sum()),
                Agg::Mean => Value::F64(if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }),
                Agg::Min => Value::F64(vals.iter().copied().fold(f64::INFINITY, f64::min)),
                Agg::Max => Value::F64(vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
            };
            out.push_row(vec![kv.clone(), v])?;
        }
        Ok(out)
    }

    /// Append another frame with the same schema.
    pub fn concat(&mut self, other: &DataFrame) -> Result<()> {
        if self.names != other.names {
            return Err(DtfError::Config("concat schema mismatch".into()));
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.extend(b.iter().cloned());
        }
        Ok(())
    }

    /// Add a computed column.
    pub fn with_column<F: Fn(usize) -> Value>(&mut self, name: &str, f: F) {
        let vals: Vec<Value> = (0..self.n_rows()).map(f).collect();
        self.names.push(name.to_string());
        self.columns.push(vals);
    }

    /// Render as CSV (RFC-4180-style quoting) — the archival form of the
    /// common tabular format.
    pub fn to_csv(&self) -> String {
        fn field(s: String) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s
            }
        }
        let mut out = String::new();
        out.push_str(&self.names.iter().map(|n| field(n.clone())).collect::<Vec<_>>().join(","));
        out.push('\n');
        for i in 0..self.n_rows() {
            let row: Vec<String> = self.row(i).iter().map(|v| field(v.to_string())).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Owned form of [`ValueKey`] so a standing group table can outlive the
/// batches it ingested. Construction canonicalizes exactly like
/// `Value::key()` (integer unification, canonical float bits), so equality
/// and hashing agree with the borrowed key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum OwnedKey {
    Null,
    Bool(bool),
    NegInt(i64),
    UInt(u64),
    F64(u64),
    Str(String),
}

impl OwnedKey {
    fn of(v: &Value) -> Self {
        match v.key() {
            ValueKey::Null => OwnedKey::Null,
            ValueKey::Bool(b) => OwnedKey::Bool(b),
            ValueKey::NegInt(i) => OwnedKey::NegInt(i),
            ValueKey::UInt(u) => OwnedKey::UInt(u),
            ValueKey::F64(bits) => OwnedKey::F64(bits),
            ValueKey::Str(s) => OwnedKey::Str(s.to_string()),
        }
    }
}

struct GroupState {
    /// First-seen key cell, echoed into the output (same convention as
    /// [`DataFrame::group_by`]).
    first: Value,
    accs: Vec<Accumulator>,
}

/// An incrementally maintained [`DataFrame::group_by`]: feed it row batches
/// as they arrive and snapshot the aggregate table at any point, paying
/// O(batch) per ingest instead of O(everything seen) per refresh.
///
/// Aggregates ride on [`dtf_core::table::Accumulator`], whose partials are
/// mergeable — two `DeltaGroupBy` tables built over disjoint batch streams
/// can be [`DeltaGroupBy::merge`]d into the table the union would have
/// produced. `Mean` is kept as a (sum, count) pair so it merges exactly.
///
/// [`DeltaGroupBy::snapshot`] emits the same schema, key order, and value
/// types as a one-shot `group_by` over the concatenation of every batch
/// (floating-point sums are accumulated in arrival order, so a snapshot is
/// bit-identical to the one-shot result when batches arrive in row order).
pub struct DeltaGroupBy {
    key: String,
    specs: Vec<(String, Agg)>,
    groups: HashMap<OwnedKey, GroupState>,
    rows: u64,
}

impl DeltaGroupBy {
    /// A standing group-by `key`, computing one aggregate column per
    /// `(value column, agg)` spec.
    pub fn new(key: &str, specs: &[(&str, Agg)]) -> Self {
        Self {
            key: key.to_string(),
            specs: specs.iter().map(|(c, a)| (c.to_string(), *a)).collect(),
            groups: HashMap::new(),
            rows: 0,
        }
    }

    fn accs_for(specs: &[(String, Agg)]) -> Vec<Accumulator> {
        specs
            .iter()
            .flat_map(|(_, agg)| match agg {
                Agg::Count => vec![Accumulator::new(AccKind::Count)],
                Agg::Sum => vec![Accumulator::new(AccKind::Sum)],
                // mean is a mergeable (sum, count) pair over numeric cells
                Agg::Mean => vec![Accumulator::new(AccKind::Sum), Accumulator::new(AccKind::Count)],
                Agg::Min => vec![Accumulator::new(AccKind::Min)],
                Agg::Max => vec![Accumulator::new(AccKind::Max)],
            })
            .collect()
    }

    /// Ingest one batch of rows. O(rows in `batch`).
    pub fn push_batch(&mut self, batch: &DataFrame) -> Result<()> {
        let ki = batch.col_index(&self.key)?;
        let vis: Vec<usize> =
            self.specs.iter().map(|(c, _)| batch.col_index(c)).collect::<Result<_>>()?;
        for i in 0..batch.n_rows() {
            let kv = &batch.columns[ki][i];
            let state = self.groups.entry(OwnedKey::of(kv)).or_insert_with(|| GroupState {
                first: kv.clone(),
                accs: Self::accs_for(&self.specs),
            });
            let mut ai = 0;
            for (si, (_, agg)) in self.specs.iter().enumerate() {
                let cell = &batch.columns[vis[si]][i];
                let numeric = cell.as_f64().map(Value::F64);
                match agg {
                    // group_by counts every row, numeric or not
                    Agg::Count => state.accs[ai].push(cell),
                    // the numeric aggs see only numeric cells, like the
                    // `as_f64`-filtered vectors in group_by
                    Agg::Sum | Agg::Min | Agg::Max => {
                        if let Some(v) = &numeric {
                            state.accs[ai].push(v);
                        }
                    }
                    Agg::Mean => {
                        if let Some(v) = &numeric {
                            state.accs[ai].push(v);
                            state.accs[ai + 1].push(v);
                        }
                    }
                }
                ai += if *agg == Agg::Mean { 2 } else { 1 };
            }
            self.rows += 1;
        }
        Ok(())
    }

    /// Absorb another table built with the same key and specs (partials
    /// from a parallel ingest path, a shard, or another run segment).
    pub fn merge(&mut self, other: &DeltaGroupBy) -> Result<()> {
        if self.key != other.key || self.specs != other.specs {
            return Err(DtfError::Config("merge of differently-specified group tables".into()));
        }
        for (k, theirs) in &other.groups {
            match self.groups.get_mut(k) {
                Some(ours) => {
                    for (a, b) in ours.accs.iter_mut().zip(&theirs.accs) {
                        a.merge(b);
                    }
                }
                None => {
                    self.groups.insert(
                        k.clone(),
                        GroupState { first: theirs.first.clone(), accs: theirs.accs.clone() },
                    );
                }
            }
        }
        self.rows += other.rows;
        Ok(())
    }

    /// Total rows ingested so far.
    pub fn rows_seen(&self) -> u64 {
        self.rows
    }

    /// Distinct groups seen so far.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// The aggregate table right now: columns `[key, value_agg...]`,
    /// ordered by key exactly like [`DataFrame::group_by`].
    pub fn snapshot(&self) -> DataFrame {
        let mut states: Vec<&GroupState> = self.groups.values().collect();
        states.sort_by(|a, b| a.first.key().cmp(&b.first.key()));
        let mut names = vec![self.key.clone()];
        for (col, agg) in &self.specs {
            let suffix = match agg {
                Agg::Count => "count",
                Agg::Sum => "sum",
                Agg::Mean => "mean",
                Agg::Min => "min",
                Agg::Max => "max",
            };
            names.push(format!("{col}_{suffix}"));
        }
        let mut out = DataFrame::new(names);
        out.reserve(states.len());
        for s in states {
            let mut row = vec![s.first.clone()];
            let mut ai = 0;
            for (_, agg) in &self.specs {
                let v = match agg {
                    Agg::Count => Value::U64(s.accs[ai].count()),
                    Agg::Sum => Value::F64(s.accs[ai].finish().as_f64().unwrap_or(0.0)),
                    Agg::Mean => {
                        let sum = s.accs[ai].finish().as_f64().unwrap_or(0.0);
                        let n = s.accs[ai + 1].count();
                        Value::F64(if n == 0 { 0.0 } else { sum / n as f64 })
                    }
                    Agg::Min => Value::F64(s.accs[ai].finish().as_f64().unwrap_or(f64::INFINITY)),
                    Agg::Max => {
                        Value::F64(s.accs[ai].finish().as_f64().unwrap_or(f64::NEG_INFINITY))
                    }
                };
                row.push(v);
                ai += if *agg == Agg::Mean { 2 } else { 1 };
            }
            out.push_row(row).expect("schema-conforming aggregate row");
        }
        out
    }
}

impl fmt::Display for DataFrame {
    /// Render the first 20 rows as an aligned text table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rows = self.n_rows().min(20);
        let mut widths: Vec<usize> = self.names.iter().map(|n| n.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::new();
        for i in 0..rows {
            let row: Vec<String> = self.row(i).iter().map(|v| v.to_string()).collect();
            for (w, c) in widths.iter_mut().zip(&row) {
                *w = (*w).max(c.len());
            }
            cells.push(row);
        }
        for (n, w) in self.names.iter().zip(&widths) {
            write!(f, "{n:>w$}  ")?;
        }
        writeln!(f)?;
        for row in cells {
            for (c, w) in row.iter().zip(&widths) {
                write!(f, "{c:>w$}  ")?;
            }
            writeln!(f)?;
        }
        if self.n_rows() > rows {
            writeln!(f, "... ({} rows total)", self.n_rows())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn df() -> DataFrame {
        let mut d = DataFrame::new(vec!["k".into(), "x".into(), "tag".into()]);
        d.push_row(vec![Value::U64(1), Value::F64(10.0), Value::Str("a".into())]).unwrap();
        d.push_row(vec![Value::U64(2), Value::F64(20.0), Value::Str("b".into())]).unwrap();
        d.push_row(vec![Value::U64(3), Value::F64(30.0), Value::Str("a".into())]).unwrap();
        d
    }

    #[test]
    fn push_and_shape() {
        let d = df();
        assert_eq!(d.n_rows(), 3);
        assert_eq!(d.n_cols(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn wrong_width_rejected() {
        let mut d = df();
        assert!(d.push_row(vec![Value::U64(1)]).is_err());
    }

    #[test]
    fn select_and_col() {
        let d = df().select(&["x", "k"]).unwrap();
        assert_eq!(d.names(), &["x".to_string(), "k".to_string()]);
        assert_eq!(d.col_f64("x").unwrap(), vec![10.0, 20.0, 30.0]);
        assert!(d.col("tag").is_err());
    }

    #[test]
    fn filter_rows() {
        let d = df().filter("tag", |v| v.as_str() == Some("a")).unwrap();
        assert_eq!(d.n_rows(), 2);
        assert_eq!(d.col_f64("x").unwrap(), vec![10.0, 30.0]);
    }

    #[test]
    fn sort_descending_input() {
        let mut d = DataFrame::new(vec!["x".into()]);
        for v in [3.0, 1.0, 2.0] {
            d.push_row(vec![Value::F64(v)]).unwrap();
        }
        let s = d.sort_by("x").unwrap();
        assert_eq!(s.col_f64("x").unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn inner_join_on_key() {
        let left = df();
        let mut right = DataFrame::new(vec!["k".into(), "y".into()]);
        right.push_row(vec![Value::U64(1), Value::Str("one".into())]).unwrap();
        right.push_row(vec![Value::U64(3), Value::Str("three".into())]).unwrap();
        right.push_row(vec![Value::U64(3), Value::Str("tres".into())]).unwrap();
        let j = left.inner_join(&right, "k", "k").unwrap();
        // k=1 matches once, k=3 matches twice, k=2 drops
        assert_eq!(j.n_rows(), 3);
        assert_eq!(j.names(), &["k", "x", "tag", "y"]);
        let ys: Vec<String> = j.col("y").unwrap().iter().map(|v| v.to_string()).collect();
        assert!(ys.contains(&"one".to_string()));
        assert!(ys.contains(&"tres".to_string()));
    }

    #[test]
    fn join_suffixes_colliding_columns() {
        let left = df();
        let right = df();
        let j = left.inner_join(&right, "k", "k").unwrap();
        assert!(j.names().contains(&"x_r".to_string()));
        assert!(j.names().contains(&"tag_r".to_string()));
    }

    #[test]
    fn group_by_aggregations() {
        let d = df();
        let g = d.group_by("tag", "x", Agg::Sum).unwrap();
        assert_eq!(g.n_rows(), 2);
        // keys ordered: a, b
        assert_eq!(g.col("tag").unwrap()[0].to_string(), "a");
        assert_eq!(g.col_f64("x_sum").unwrap(), vec![40.0, 20.0]);
        let g = d.group_by("tag", "x", Agg::Count).unwrap();
        assert_eq!(g.col("x_count").unwrap()[0].as_u64(), Some(2));
        let g = d.group_by("tag", "x", Agg::Mean).unwrap();
        assert_eq!(g.col_f64("x_mean").unwrap()[0], 20.0);
        let g = d.group_by("tag", "x", Agg::Max).unwrap();
        assert_eq!(g.col_f64("x_max").unwrap(), vec![30.0, 20.0]);
    }

    // Pinned behaviour: `Agg::Count` counts *every* row of the group,
    // numeric or not — a non-numeric value column still contributes to the
    // count (pandas' `size` semantics, which the warnings views rely on).
    #[test]
    fn count_includes_non_numeric_rows() {
        let mut d = DataFrame::new(vec!["k".into(), "v".into()]);
        d.push_row(vec![Value::Str("a".into()), Value::Str("x".into())]).unwrap();
        d.push_row(vec![Value::Str("a".into()), Value::F64(1.0)]).unwrap();
        d.push_row(vec![Value::Str("a".into()), Value::Null]).unwrap();
        d.push_row(vec![Value::Str("b".into()), Value::Bool(true)]).unwrap();
        let g = d.group_by("k", "v", Agg::Count).unwrap();
        assert_eq!(g.col("v_count").unwrap()[0].as_u64(), Some(3), "a: str+f64+null all count");
        assert_eq!(g.col("v_count").unwrap()[1].as_u64(), Some(1), "b: bool counts");
        // ...while numeric aggregations keep skipping non-numeric cells
        let g = d.group_by("k", "v", Agg::Sum).unwrap();
        assert_eq!(g.col_f64("v_sum").unwrap()[0], 1.0);
    }

    // Pinned behaviour: grouping keys of mixed *numeric* variants collapse
    // when their values coincide (U64(1) and I64(1) are one group), floats
    // keep their own identity, and strings never merge with numbers.
    #[test]
    fn group_keys_unify_cross_typed_integers() {
        let mut d = DataFrame::new(vec!["k".into(), "x".into()]);
        d.push_row(vec![Value::U64(1), Value::F64(10.0)]).unwrap();
        d.push_row(vec![Value::I64(1), Value::F64(20.0)]).unwrap();
        d.push_row(vec![Value::F64(1.0), Value::F64(40.0)]).unwrap();
        let g = d.group_by("k", "x", Agg::Sum).unwrap();
        assert_eq!(g.n_rows(), 2, "U64(1)+I64(1) merge; F64(1.0) stays separate");
        let sums: Vec<f64> = g.col_f64("x_sum").unwrap();
        assert!(sums.contains(&30.0) && sums.contains(&40.0));
    }

    #[test]
    fn join_matches_cross_typed_integer_keys() {
        let mut left = DataFrame::new(vec!["k".into(), "x".into()]);
        left.push_row(vec![Value::U64(7), Value::F64(1.0)]).unwrap();
        let mut right = DataFrame::new(vec!["k".into(), "y".into()]);
        right.push_row(vec![Value::I64(7), Value::F64(2.0)]).unwrap();
        let j = left.inner_join(&right, "k", "k").unwrap();
        assert_eq!(j.n_rows(), 1, "U64(7) joins I64(7)");
    }

    #[test]
    fn sort_by_is_stable_across_mixed_variants() {
        // mixed column: cmp_total ranks Null < Bool < numbers < Str and the
        // sort must be stable for equal-comparing cells
        let mut d = DataFrame::new(vec!["v".into(), "i".into()]);
        let cells = [
            Value::Str("z".into()),
            Value::F64(2.0),
            Value::U64(2), // compares Equal to F64(2.0): stability matters
            Value::Null,
            Value::Bool(true),
            Value::I64(-1),
        ];
        for (i, c) in cells.iter().enumerate() {
            d.push_row(vec![c.clone(), Value::U64(i as u64)]).unwrap();
        }
        let s = d.sort_by("v").unwrap();
        let order: Vec<u64> = s.col("i").unwrap().iter().map(|v| v.as_u64().unwrap()).collect();
        // Null(3), Bool(4), -1(5), then 2.0(1) before 2(2) by stability, Str(0)
        assert_eq!(order, vec![3, 4, 5, 1, 2, 0]);
    }

    #[test]
    fn concat_same_schema() {
        let mut a = df();
        let b = df();
        a.concat(&b).unwrap();
        assert_eq!(a.n_rows(), 6);
        let bad = DataFrame::new(vec!["z".into()]);
        assert!(a.concat(&bad).is_err());
    }

    #[test]
    fn with_column_computes() {
        let mut d = df();
        let xs = d.col_f64("x").unwrap();
        d.with_column("x2", |i| Value::F64(xs[i] * 2.0));
        assert_eq!(d.col_f64("x2").unwrap(), vec![20.0, 40.0, 60.0]);
    }

    #[test]
    fn from_tabular_uses_schema() {
        use dtf_core::events::{IoOp, IoRecord};
        use dtf_core::ids::{FileId, NodeId, ThreadId, WorkerId};
        use dtf_core::time::Time;
        let recs = vec![IoRecord {
            host: NodeId(0),
            worker: WorkerId::new(NodeId(0), 0),
            thread: ThreadId(7),
            file: FileId(0),
            op: IoOp::Read,
            offset: 0,
            size: 4096,
            start: Time(0),
            stop: Time(100),
        }];
        let d = DataFrame::from_tabular(&recs);
        assert_eq!(d.n_rows(), 1);
        assert!(d.names().contains(&"thread".to_string()));
        assert_eq!(d.col("op").unwrap()[0].as_str(), Some("read"));
    }

    #[test]
    fn display_renders_header() {
        let s = df().to_string();
        assert!(s.contains('k'));
        assert!(s.contains("20.0"));
    }

    #[test]
    fn csv_export_quotes_and_rows() {
        let mut d = DataFrame::new(vec!["name".into(), "x".into()]);
        d.push_row(vec![Value::Str("plain".into()), Value::U64(1)]).unwrap();
        d.push_row(vec![Value::Str("with,comma".into()), Value::U64(2)]).unwrap();
        d.push_row(vec![Value::Str("with\"quote".into()), Value::U64(3)]).unwrap();
        let csv = d.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "name,x");
        assert_eq!(lines[2], "\"with,comma\",2");
        assert_eq!(lines[3], "\"with\"\"quote\",3");
    }

    /// A `DeltaGroupBy` fed row-by-row must snapshot exactly what a
    /// one-shot `group_by` computes over the whole frame, for every agg.
    #[test]
    fn delta_group_by_matches_one_shot() {
        let d = df();
        for agg in [Agg::Count, Agg::Sum, Agg::Mean, Agg::Min, Agg::Max] {
            let expect = d.group_by("tag", "x", agg).unwrap();
            let mut delta = DeltaGroupBy::new("tag", &[("x", agg)]);
            // one row per batch: the maximally incremental schedule
            for i in 0..d.n_rows() {
                let mut batch = DataFrame::new(d.names().to_vec());
                batch.push_row(d.row(i)).unwrap();
                delta.push_batch(&batch).unwrap();
            }
            assert_eq!(delta.snapshot(), expect, "{agg:?}");
            assert_eq!(delta.rows_seen(), 3);
            assert_eq!(delta.n_groups(), 2);
        }
    }

    #[test]
    fn delta_group_by_multi_spec_and_merge() {
        let d = df();
        let specs: &[(&str, Agg)] = &[("x", Agg::Sum), ("x", Agg::Mean), ("k", Agg::Max)];
        let mut whole = DeltaGroupBy::new("tag", specs);
        whole.push_batch(&d).unwrap();
        // split the rows across two partials and merge them
        let mut a = DeltaGroupBy::new("tag", specs);
        let mut b = DeltaGroupBy::new("tag", specs);
        a.push_batch(&d.head(1)).unwrap();
        let mut rest = DataFrame::new(d.names().to_vec());
        rest.push_row(d.row(1)).unwrap();
        rest.push_row(d.row(2)).unwrap();
        b.push_batch(&rest).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.snapshot(), whole.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.names(), &["tag", "x_sum", "x_mean", "k_max"]);
        assert_eq!(snap.col_f64("x_sum").unwrap(), vec![40.0, 20.0]);
        assert_eq!(snap.col_f64("x_mean").unwrap(), vec![20.0, 20.0]);
        assert_eq!(snap.col_f64("k_max").unwrap(), vec![3.0, 2.0]);
        // mismatched specs refuse to merge
        let other = DeltaGroupBy::new("k", specs);
        assert!(a.merge(&other).is_err());
    }

    #[test]
    fn delta_group_by_non_numeric_cells() {
        let mut d = DataFrame::new(vec!["k".into(), "v".into()]);
        d.push_row(vec![Value::Str("a".into()), Value::Str("x".into())]).unwrap();
        d.push_row(vec![Value::Str("a".into()), Value::F64(1.0)]).unwrap();
        d.push_row(vec![Value::Str("b".into()), Value::Null]).unwrap();
        for agg in [Agg::Count, Agg::Sum, Agg::Mean, Agg::Min, Agg::Max] {
            let mut delta = DeltaGroupBy::new("k", &[("v", agg)]);
            delta.push_batch(&d).unwrap();
            assert_eq!(delta.snapshot(), d.group_by("k", "v", agg).unwrap(), "{agg:?}");
        }
    }
}
