//! Per-worker utilization timelines — the system-level "is this node
//! busy?" view a global metrics service (LDMS, §III-B) would provide,
//! reconstructed here from task execution intervals.
//!
//! Utilization is the fraction of a worker's thread-time spent executing
//! tasks within each time window. Imbalance across workers is one of the
//! scheduling-related variability sources §V discusses (placement, work
//! stealing).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dtf_core::ids::WorkerId;
use dtf_wms::RunData;

/// Utilization of one worker over the run's time windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerUtilization {
    pub worker: WorkerId,
    /// Busy fraction (0..=1) per window.
    pub busy: Vec<f64>,
}

/// Per-worker utilization over `bins` equal windows.
///
/// `threads_per_worker` caps the per-window busy time (a worker can be at
/// most `threads × window` busy).
pub fn per_worker(data: &RunData, bins: usize, threads_per_worker: u32) -> Vec<WorkerUtilization> {
    assert!(bins > 0 && threads_per_worker > 0);
    let horizon = data.wall_time.as_secs_f64().max(1e-9);
    let w = horizon / bins as f64;
    let mut map: HashMap<WorkerId, Vec<f64>> = HashMap::new();
    for d in &data.task_done {
        let busy = map.entry(d.worker).or_insert_with(|| vec![0.0; bins]);
        let (s, e) = (d.start.as_secs_f64(), d.stop.as_secs_f64());
        let first = ((s / w) as usize).min(bins - 1);
        let last = ((e / w) as usize).min(bins - 1);
        for (bin, slot) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
            let b0 = bin as f64 * w;
            let b1 = b0 + w;
            *slot += (e.min(b1) - s.max(b0)).max(0.0);
        }
    }
    let cap = w * threads_per_worker as f64;
    let mut out: Vec<WorkerUtilization> = map
        .into_iter()
        .map(|(worker, busy)| WorkerUtilization {
            worker,
            busy: busy.into_iter().map(|b| (b / cap).min(1.0)).collect(),
        })
        .collect();
    out.sort_by_key(|u| u.worker);
    out
}

/// Imbalance metric per window: max − min busy fraction across workers.
/// High values flag windows where some workers idled while others were
/// saturated (stealing opportunities / placement pathologies).
pub fn imbalance(utilizations: &[WorkerUtilization]) -> Vec<f64> {
    let Some(first) = utilizations.first() else { return Vec::new() };
    let bins = first.busy.len();
    (0..bins)
        .map(|b| {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for u in utilizations {
                lo = lo.min(u.busy[b]);
                hi = hi.max(u.busy[b]);
            }
            (hi - lo).max(0.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io_timeline::tests_support::empty_run;
    use dtf_core::events::TaskDoneEvent;
    use dtf_core::ids::{GraphId, NodeId, TaskKey, ThreadId};
    use dtf_core::time::{Dur, Time};

    fn done(worker: WorkerId, start: f64, stop: f64) -> TaskDoneEvent {
        TaskDoneEvent {
            key: TaskKey::new("t", 0, 0),
            graph: GraphId(0),
            worker,
            thread: ThreadId(1),
            start: Time::from_secs_f64(start),
            stop: Time::from_secs_f64(stop),
            nbytes: 1,
        }
    }

    #[test]
    fn busy_fractions_clip_and_localize() {
        let w0 = WorkerId::new(NodeId(0), 0);
        let w1 = WorkerId::new(NodeId(0), 1);
        let mut data = empty_run();
        data.wall_time = Dur::from_secs_f64(100.0);
        // w0 busy 0..50 with one thread; w1 idle
        data.task_done = vec![done(w0, 0.0, 50.0), done(w1, 90.0, 95.0)];
        let u = per_worker(&data, 10, 1);
        assert_eq!(u.len(), 2);
        let u0 = &u[0];
        assert_eq!(u0.worker, w0);
        assert!((u0.busy[0] - 1.0).abs() < 1e-9);
        assert!((u0.busy[4] - 1.0).abs() < 1e-9);
        assert_eq!(u0.busy[6], 0.0);
        let u1 = &u[1];
        assert!((u1.busy[9] - 0.5).abs() < 1e-9, "5s of a 10s window");
    }

    #[test]
    fn multithreaded_cap() {
        let w0 = WorkerId::new(NodeId(0), 0);
        let mut data = empty_run();
        data.wall_time = Dur::from_secs_f64(10.0);
        // 4 concurrent tasks on a 2-thread worker: capped at 1.0
        data.task_done = (0..4).map(|_| done(w0, 0.0, 10.0)).collect();
        let u = per_worker(&data, 2, 2);
        assert!((u[0].busy[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_detects_idle_vs_busy() {
        let w0 = WorkerId::new(NodeId(0), 0);
        let w1 = WorkerId::new(NodeId(0), 1);
        let mut data = empty_run();
        data.wall_time = Dur::from_secs_f64(10.0);
        data.task_done = vec![done(w0, 0.0, 10.0), done(w1, 0.0, 1.0)];
        let u = per_worker(&data, 1, 1);
        let im = imbalance(&u);
        assert!((im[0] - 0.9).abs() < 1e-9);
        assert!(imbalance(&[]).is_empty());
    }
}
