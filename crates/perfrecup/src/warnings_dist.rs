//! Fig. 7: distribution of runtime warnings over time, and their
//! correlation with long-running tasks.
//!
//! The paper counts 297 *unresponsive event loop* warnings in the first
//! 500 s of the XGBoost workflow and observes that they "correlate
//! perfectly" with the long `read_parquet-fused-assign` tasks. The
//! correlation here is computed directly: the fraction of warnings whose
//! timestamp falls inside the execution interval of a long task on the
//! same worker.

use serde::{Deserialize, Serialize};

use dtf_core::events::WarningKind;
use dtf_core::stats::Histogram;
use dtf_wms::RunData;

/// The warning distribution and its task correlation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarningReport {
    pub total: usize,
    pub unresponsive: usize,
    pub gc: usize,
    /// Unresponsive-event-loop warnings in the first `early_window_s`.
    pub unresponsive_early: usize,
    pub early_window_s: f64,
    /// Histogram of warning times over the run (bin counts).
    pub histogram: Histogram,
    /// Fraction of warnings overlapping a long task's execution on the
    /// same worker.
    pub long_task_overlap: f64,
    /// The duration threshold (seconds) defining a "long" task.
    pub long_task_threshold_s: f64,
    /// Category of the long tasks most overlapped by warnings.
    pub dominant_category: Option<String>,
}

/// Analyze warnings with `bins` time bins, an early window (paper: 500 s),
/// and a long-task duration threshold.
pub fn report(
    data: &RunData,
    bins: usize,
    early_window_s: f64,
    long_task_threshold_s: f64,
) -> WarningReport {
    let horizon = data.wall_time.as_secs_f64().max(1.0);
    let mut histogram = Histogram::new(0.0, horizon, bins.max(1));
    let mut unresponsive = 0;
    let mut gc = 0;
    let mut unresponsive_early = 0;
    for w in &data.warnings {
        histogram.push(w.time.as_secs_f64());
        match w.kind {
            WarningKind::UnresponsiveEventLoop => {
                unresponsive += 1;
                if w.time.as_secs_f64() <= early_window_s {
                    unresponsive_early += 1;
                }
            }
            WarningKind::GcPause => gc += 1,
        }
    }

    // long tasks, indexed by worker
    let long_tasks: Vec<_> = data
        .task_done
        .iter()
        .filter(|d| d.duration().as_secs_f64() >= long_task_threshold_s)
        .collect();
    let mut overlap = 0usize;
    let mut by_cat: std::collections::HashMap<&str, usize> = Default::default();
    for w in &data.warnings {
        let hit = long_tasks.iter().find(|d| {
            w.worker.is_none_or(|ww| ww == d.worker) && d.start <= w.time && w.time <= d.stop
        });
        if let Some(d) = hit {
            overlap += 1;
            *by_cat.entry(d.key.prefix.as_str()).or_default() += 1;
        }
    }
    let dominant_category = by_cat.into_iter().max_by_key(|(_, n)| *n).map(|(c, _)| c.to_string());
    WarningReport {
        total: data.warnings.len(),
        unresponsive,
        gc,
        unresponsive_early,
        early_window_s,
        histogram,
        long_task_overlap: if data.warnings.is_empty() {
            0.0
        } else {
            overlap as f64 / data.warnings.len() as f64
        },
        long_task_threshold_s,
        dominant_category,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io_timeline::tests_support::empty_run;
    use dtf_core::events::{TaskDoneEvent, WarningEvent};
    use dtf_core::ids::{GraphId, NodeId, TaskKey, ThreadId, WorkerId};
    use dtf_core::time::{Dur, Time};

    fn warn(kind: WarningKind, t: f64, worker: Option<WorkerId>) -> WarningEvent {
        WarningEvent { kind, worker, time: Time::from_secs_f64(t), duration: Dur(1) }
    }

    #[test]
    fn report_counts_and_correlates() {
        let w0 = WorkerId::new(NodeId(0), 0);
        let mut data = empty_run();
        data.wall_time = Dur::from_secs_f64(1000.0);
        data.task_done = vec![TaskDoneEvent {
            key: TaskKey::new("read_parquet-fused-assign", 0, 0),
            graph: GraphId(0),
            worker: w0,
            thread: ThreadId(1),
            start: Time::from_secs_f64(10.0),
            stop: Time::from_secs_f64(210.0),
            nbytes: 300 << 20,
        }];
        data.warnings = vec![
            warn(WarningKind::UnresponsiveEventLoop, 50.0, Some(w0)), // inside
            warn(WarningKind::UnresponsiveEventLoop, 100.0, Some(w0)), // inside
            warn(WarningKind::GcPause, 150.0, Some(w0)),              // inside
            warn(WarningKind::UnresponsiveEventLoop, 600.0, Some(w0)), // outside
        ];
        let r = report(&data, 20, 500.0, 100.0);
        assert_eq!(r.total, 4);
        assert_eq!(r.unresponsive, 3);
        assert_eq!(r.gc, 1);
        assert_eq!(r.unresponsive_early, 2);
        assert!((r.long_task_overlap - 0.75).abs() < 1e-9);
        assert_eq!(r.dominant_category.as_deref(), Some("read_parquet-fused-assign"));
        assert_eq!(r.histogram.total(), 4);
    }

    #[test]
    fn warning_on_other_worker_does_not_overlap() {
        let w0 = WorkerId::new(NodeId(0), 0);
        let w1 = WorkerId::new(NodeId(0), 1);
        let mut data = empty_run();
        data.wall_time = Dur::from_secs_f64(100.0);
        data.task_done = vec![TaskDoneEvent {
            key: TaskKey::new("slow", 0, 0),
            graph: GraphId(0),
            worker: w0,
            thread: ThreadId(1),
            start: Time::ZERO,
            stop: Time::from_secs_f64(100.0),
            nbytes: 1,
        }];
        data.warnings = vec![warn(WarningKind::UnresponsiveEventLoop, 50.0, Some(w1))];
        let r = report(&data, 10, 500.0, 10.0);
        assert_eq!(r.long_task_overlap, 0.0);
    }

    #[test]
    fn empty_run_report() {
        let r = report(&empty_run(), 10, 500.0, 10.0);
        assert_eq!(r.total, 0);
        assert_eq!(r.long_task_overlap, 0.0);
        assert_eq!(r.dominant_category, None);
    }
}
