//! Seeded-schedule interleaving harness for the shard handoff state
//! machine (`--features interleave`).
//!
//! Each seed drives one deterministic schedule against a *manual* plane:
//! producer pushes, partial flushes, single shard steps, consumer pulls,
//! and barriers interleave in a seeded random order, exploring handoff
//! states (queued / partially applied / drained) that the spawned plane
//! reaches only under rare thread timings. Invariants checked throughout:
//!
//! - delivery is exactly-once per group, with nothing lost by the final
//!   barrier + drain;
//! - per (producer, partition) sequence numbers are strictly increasing
//!   in delivery order — handoff never reorders a producer's batches;
//! - a barrier always leaves every shard queue empty;
//! - consumers never observe an event that was not yet applied by a step
//!   (the log is append-only, so this falls out of offset contiguity).
//!
//! A failing seed reproduces exactly: schedules derive only from the
//! seed, never from wall time. `DTF_INTERLEAVE_SEEDS` overrides the
//! number of seeds (default 64).

#![cfg(feature = "interleave")]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use dtf_mofka::{ConsumerConfig, Event, MofkaService, ProducerConfig, TopicConfig};

fn ev(producer: u64, seq: u64) -> Event {
    Event::meta_only(serde_json::json!({ "p": producer, "s": seq }))
}

struct Harness {
    svc: MofkaService,
    producers: Vec<dtf_mofka::Producer>,
    next_seq: Vec<u64>,
    consumer: dtf_mofka::Consumer,
    // exactly-once ledger: (producer, seq) -> delivered?
    seen: std::collections::HashSet<(u64, u64)>,
    // per (producer, partition): last seq delivered, for order checks
    last_seq: std::collections::HashMap<(u64, u32), u64>,
    pushed: u64,
    delivered: u64,
}

impl Harness {
    fn new(rng: &mut SmallRng) -> Self {
        let shards = rng.gen_range(1..5);
        let partitions = rng.gen_range(1..5) as u32;
        let svc = MofkaService::manual(shards);
        svc.create_topic("t", TopicConfig { partitions }).unwrap();
        let n_producers = rng.gen_range(1..4);
        let producers = (0..n_producers)
            .map(|_| {
                let batch = rng.gen_range(1..33);
                svc.producer("t", ProducerConfig { batch_size: batch, ..Default::default() })
                    .unwrap()
            })
            .collect();
        let prefetch = rng.gen_range(1..65);
        let consumer = svc.consumer("t", ConsumerConfig { group: "g".into(), prefetch }).unwrap();
        Self {
            svc,
            producers,
            next_seq: vec![0; n_producers],
            consumer,
            seen: Default::default(),
            last_seq: Default::default(),
            pushed: 0,
            delivered: 0,
        }
    }

    fn deliver(&mut self, batch: Vec<dtf_mofka::StoredEvent>) {
        for se in batch {
            let p = se.event.metadata["p"].as_u64().unwrap();
            let s = se.event.metadata["s"].as_u64().unwrap();
            assert!(self.seen.insert((p, s)), "duplicate delivery of (p{p}, s{s})");
            if let Some(prev) = self.last_seq.insert((p, se.id.partition), s) {
                assert!(
                    s > prev,
                    "producer {p} seq {s} delivered after {prev} in partition {}",
                    se.id.partition
                );
            }
            self.delivered += 1;
        }
    }

    fn run(mut self, rng: &mut SmallRng) {
        let plane = self.svc.plane().unwrap().clone();
        let steps = rng.gen_range(64..512);
        for _ in 0..steps {
            match rng.gen_range(0..100) {
                // push: the most common op, so queues actually fill
                0..=54 => {
                    let i = rng.gen_range(0..self.producers.len());
                    let s = self.next_seq[i];
                    self.next_seq[i] += 1;
                    self.producers[i].push(ev(i as u64, s)).unwrap();
                    self.pushed += 1;
                }
                // explicit flush: hand partial batches to the shards
                55..=69 => {
                    let i = rng.gen_range(0..self.producers.len());
                    self.producers[i].flush().unwrap();
                }
                // step one shard once: apply a single queued job
                70..=84 => {
                    let i = rng.gen_range(0..plane.num_shards());
                    plane.step_shard(i);
                }
                // pull: may race arbitrary handoff states
                85..=94 => {
                    let n = rng.gen_range(1..64);
                    let batch = self.consumer.pull(n).unwrap();
                    self.deliver(batch);
                }
                // barrier: drains every queue inline on a manual plane
                _ => {
                    plane.barrier().unwrap();
                    for i in 0..plane.num_shards() {
                        assert_eq!(plane.queued_jobs(i), 0, "barrier left shard {i} non-empty");
                    }
                }
            }
        }
        // quiesce: flush every producer, drain the plane, drain the group
        for p in &mut self.producers {
            p.sync().unwrap();
        }
        let rest = self.consumer.drain_all().unwrap();
        self.deliver(rest);
        assert_eq!(
            self.delivered, self.pushed,
            "{} events pushed but {} delivered",
            self.pushed, self.delivered
        );
    }
}

#[test]
fn seeded_schedules_preserve_handoff_invariants() {
    let seeds: u64 =
        std::env::var("DTF_INTERLEAVE_SEEDS").ok().and_then(|s| s.parse().ok()).unwrap_or(64);
    for seed in 0..seeds {
        let mut rng = SmallRng::seed_from_u64(0xd7f_1e4a ^ seed);
        let harness = Harness::new(&mut rng);
        harness.run(&mut rng);
    }
}
