//! Mixed-format store compatibility: a store whose early segments were
//! written by the JSON-era code (format byte 0, JSON slot values) must
//! replay unchanged, and appending binary-era records to it must yield
//! one continuous stream whose exported values are identical across
//! reopens.
//!
//! The JSON era is reconstructed faithfully: generic `Metadata::Json`
//! events produce tag-0/1 slot values — byte-identical to what the old
//! typed path wrote — and the segment headers are restamped to format 0
//! with their CRCs recomputed, exactly what an old store carries on disk.

use std::fs;
use std::path::{Path, PathBuf};

use bytes::Bytes;
use dtf_core::events::{LogEntry, LogLevel, LogSource, ProvRecord};
use dtf_core::time::Time;
use dtf_mofka::{Event, Metadata, MofkaService, ServiceConfig, TopicConfig};
use dtf_store::crc32::crc32;
use dtf_store::log::segment_paths;
use dtf_store::{FORMAT_BINARY, FORMAT_JSON};

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dtf-mixed-{label}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Restamp every segment header under `dir` to `format`, recomputing the
/// header CRC — the on-disk shape of a store written by that format's era.
fn restamp_store(dir: &Path, format: u8) {
    for sub in ["yokan", "warabi"] {
        for seg in segment_paths(&dir.join(sub)).unwrap() {
            let mut data = fs::read(&seg).unwrap();
            data[7] = format;
            let crc = crc32(&data[..24]);
            data[24..28].copy_from_slice(&crc.to_le_bytes());
            fs::write(&seg, &data).unwrap();
        }
    }
}

/// Canonical rendering of the whole store through the export boundary
/// (`to_value`), where typed and JSON metadata must be indistinguishable.
fn stream_text(svc: &MofkaService) -> String {
    let mut out = String::new();
    for name in svc.topic_names() {
        let topic = svc.topic(&name).unwrap();
        for p in 0..topic.num_partitions() {
            for (i, e) in topic.read(p, 0, usize::MAX >> 1).unwrap().iter().enumerate() {
                out.push_str(&format!(
                    "{name}/{p}/{i} {} {} {}\n",
                    e.id,
                    e.event.data.len(),
                    e.event.metadata.to_value()
                ));
            }
        }
    }
    out
}

fn typed_log(i: u64) -> ProvRecord {
    ProvRecord::Log(LogEntry {
        time: Time(1000 + i),
        level: LogLevel::Info,
        source: LogSource::Scheduler,
        message: format!("binary-era record {i}"),
    })
}

#[test]
fn json_era_store_replays_and_extends_with_binary_records() {
    let dir = scratch("upgrade");

    // --- JSON era: generic events, then headers restamped to format 0
    {
        let svc = MofkaService::with_config(&ServiceConfig {
            persist: Some(dir.clone()),
            ..Default::default()
        })
        .unwrap();
        svc.create_topic("t", TopicConfig { partitions: 1 }).unwrap();
        let t = svc.topic("t").unwrap();
        for i in 0..20u64 {
            let data = if i % 3 == 0 { Bytes::from(vec![i as u8; 24]) } else { Bytes::new() };
            t.append_batch(0, vec![Event::new(serde_json::json!({"era": "json", "i": i}), data)])
                .unwrap();
        }
        svc.sync().unwrap();
    }
    restamp_store(&dir, FORMAT_JSON);

    // read-only check first: the v0 store replays cleanly as-is
    {
        let (_, recovery) = MofkaService::reopen(&dir).unwrap();
        assert!(!recovery.yokan.torn && !recovery.warabi.torn, "v0 store replays cleanly");
        assert_eq!(recovery.yokan.format, FORMAT_JSON, "every surviving segment is JSON-era");
        assert_eq!(recovery.restored_events, 20);
    }

    // --- binary era: open the v0 store writable and append typed records
    let before_upgrade;
    {
        let svc = MofkaService::with_config(&ServiceConfig {
            persist: Some(dir.clone()),
            ..Default::default()
        })
        .unwrap();
        let t = svc.topic("t").unwrap();
        assert_eq!(t.total_len(), 20, "the writable open restored the JSON era");
        for i in 0..10u64 {
            t.append_batch(0, vec![Event::typed(typed_log(i))]).unwrap();
        }
        svc.sync().unwrap();
        before_upgrade = stream_text(&svc);
    }

    // --- the mixed store: one continuous stream, values identical
    let (svc, recovery) = MofkaService::reopen(&dir).unwrap();
    assert!(!recovery.yokan.torn && !recovery.warabi.torn);
    assert_eq!(recovery.restored_events, 30, "both eras replay into one stream");
    assert_eq!(stream_text(&svc), before_upgrade, "reopen is value-identical");

    let t = svc.topic("t").unwrap();
    let events = t.read(0, 0, usize::MAX >> 1).unwrap();
    assert_eq!(events.len(), 30);
    for (i, e) in events[..20].iter().enumerate() {
        match &e.event.metadata {
            Metadata::Json(v) => assert_eq!(v["i"], i as u64),
            other => panic!("JSON-era slot {i} must stay JSON, got {other:?}"),
        }
    }
    for (i, e) in events[20..].iter().enumerate() {
        match &e.event.metadata {
            Metadata::Typed(rec) => assert_eq!(**rec, typed_log(i as u64)),
            other => panic!("binary-era slot {i} must restore typed, got {other:?}"),
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// The write path of a fresh store stamps segments with the binary format
/// version — the upgrade is on by default, not opt-in.
#[test]
fn fresh_stores_are_stamped_binary() {
    let dir = scratch("fresh");
    {
        let svc = MofkaService::with_config(&ServiceConfig {
            persist: Some(dir.clone()),
            ..Default::default()
        })
        .unwrap();
        svc.create_topic("t", TopicConfig { partitions: 1 }).unwrap();
        svc.topic("t").unwrap().append_batch(0, vec![Event::typed(typed_log(0))]).unwrap();
        svc.sync().unwrap();
    }
    let (_, recovery) = MofkaService::reopen(&dir).unwrap();
    assert_eq!(recovery.yokan.format, FORMAT_BINARY);
    assert_eq!(recovery.warabi.format, FORMAT_BINARY);
    fs::remove_dir_all(&dir).unwrap();
}
