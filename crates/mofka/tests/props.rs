//! Property-based tests of the streaming service against naive models.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

use dtf_mofka::consumer::ConsumerConfig;
use dtf_mofka::producer::{PartitionStrategy, ProducerConfig};
use dtf_mofka::topic::TopicConfig;
use dtf_mofka::yokan::Yokan;
use dtf_mofka::{Event, MofkaService};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Yokan behaves exactly like a BTreeMap for any operation sequence.
    #[test]
    fn yokan_matches_btreemap_model(
        ops in proptest::collection::vec((0u8..4, 0u8..16, any::<u8>()), 0..120)
    ) {
        let kv = Yokan::new();
        let mut model: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        for (op, k, v) in ops {
            let key = format!("k{k:02}");
            match op {
                0 => {
                    kv.put(key.clone(), vec![v]);
                    model.insert(key, vec![v]);
                }
                1 => {
                    let got = kv.get(&key).map(|b| b.to_vec());
                    prop_assert_eq!(got, model.get(&key).cloned());
                }
                2 => {
                    let removed = kv.delete(&key);
                    prop_assert_eq!(removed, model.remove(&key).is_some());
                }
                _ => {
                    let prefix = format!("k{:01}", k % 2);
                    let got: Vec<String> =
                        kv.list_prefix(&prefix).into_iter().map(|(k, _)| k).collect();
                    let expect: Vec<String> = model
                        .range(prefix.clone()..)
                        .take_while(|(k, _)| k.starts_with(&prefix))
                        .map(|(k, _)| k.clone())
                        .collect();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(kv.len(), model.len());
        }
    }

    /// Concurrent producers with key-hash partitioning: per-key order is
    /// preserved end to end, regardless of thread interleaving.
    #[test]
    fn per_key_order_survives_concurrency(
        n_keys in 1usize..6,
        per_key in 1usize..40,
        partitions in 1u32..5,
    ) {
        let svc = Arc::new(MofkaService::new());
        svc.create_topic("t", TopicConfig { partitions }).unwrap();
        let handles: Vec<_> = (0..n_keys)
            .map(|key| {
                let svc = svc.clone();
                std::thread::spawn(move || {
                    let mut p = svc
                        .producer("t", ProducerConfig {
                            batch_size: 4,
                            strategy: PartitionStrategy::HashKey("key".into()),
                        })
                        .unwrap();
                    for seq in 0..per_key {
                        p.push(Event::meta_only(serde_json::json!({
                            "key": key, "seq": seq
                        })))
                        .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut consumer = svc
            .consumer("t", ConsumerConfig { group: "g".into(), prefetch: 8 })
            .unwrap();
        let events = consumer.drain_all().unwrap();
        prop_assert_eq!(events.len(), n_keys * per_key);
        // per key, seq numbers arrive in increasing order
        let mut last: std::collections::HashMap<u64, i64> = Default::default();
        for e in events {
            let key = e.event.metadata["key"].as_u64().unwrap();
            let seq = e.event.metadata["seq"].as_i64().unwrap();
            let prev = last.insert(key, seq).unwrap_or(-1);
            prop_assert!(seq > prev, "key {key}: seq {seq} after {prev}");
        }
    }

    /// Offsets are dense and unique per partition whatever the batch sizes.
    #[test]
    fn offsets_dense_per_partition(batches in proptest::collection::vec(1usize..20, 1..20)) {
        let svc = MofkaService::new();
        svc.create_topic("t", TopicConfig { partitions: 3 }).unwrap();
        let mut total = 0usize;
        for batch in &batches {
            let mut p = svc
                .producer("t", ProducerConfig {
                    batch_size: *batch,
                    strategy: PartitionStrategy::RoundRobin,
                })
                .unwrap();
            for i in 0..*batch {
                p.push(Event::meta_only(serde_json::json!(i))).unwrap();
            }
            p.flush().unwrap();
            total += batch;
        }
        let topic = svc.topic("t").unwrap();
        let mut sum = 0;
        for part in 0..3 {
            let len = topic.partition_len(part).unwrap();
            sum += len;
            let events = topic.read(part, 0, usize::MAX >> 1).unwrap();
            prop_assert_eq!(events.len() as u64, len);
            for (i, e) in events.iter().enumerate() {
                prop_assert_eq!(e.id.offset, i as u64, "offsets are dense");
            }
        }
        prop_assert_eq!(sum, total as u64);
    }
}
