//! `Topic::restore` versus the concurrent data plane: a persisted
//! directory must reopen to a clean committed prefix no matter what the
//! plane was doing — queued-unflushed batches are drained by `shutdown`
//! (never dropped), and a reopen racing a live service sees only
//! committed state, never a torn or reordered log.

use std::sync::atomic::{AtomicU64, Ordering};

use dtf_mofka::{
    ConsumerConfig, Event, MofkaService, ProducerConfig, ServiceConfig, ServiceMode, TopicConfig,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dtf-restore-concurrent-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_real_time(dir: &std::path::Path, shards: usize) -> MofkaService {
    MofkaService::with_config(&ServiceConfig {
        persist: Some(dir.to_path_buf()),
        mode: ServiceMode::RealTime { shards },
    })
    .unwrap()
}

fn ev(seq: u64) -> Event {
    Event::meta_only(serde_json::json!({ "s": seq }))
}

/// Every event handed to a producer `flush` before `shutdown` survives
/// the reopen — the shard queues are drained and synced, not dropped.
#[test]
fn shutdown_drains_queued_batches_before_reopen() {
    let dir = temp_dir("shutdown");
    const N: u64 = 1_000;
    {
        let svc = durable_real_time(&dir, 2);
        svc.create_topic("t", TopicConfig { partitions: 3 }).unwrap();
        let mut producer =
            svc.producer("t", ProducerConfig { batch_size: 64, ..Default::default() }).unwrap();
        for s in 0..N {
            producer.push(ev(s)).unwrap();
        }
        // flush hands the tail batches to the shard queues; no barrier —
        // shutdown below is what must drain them
        producer.flush().unwrap();
        svc.shutdown().unwrap();
    }
    let (svc, recovery) = MofkaService::reopen(&dir).unwrap();
    assert_eq!(recovery.restored_events, N, "queued batches were dropped, not drained");
    let mut consumer =
        svc.consumer("t", ConsumerConfig { group: "audit".into(), prefetch: 256 }).unwrap();
    let drained = consumer.drain_all().unwrap();
    assert_eq!(drained.len() as u64, N);
    let mut seqs: Vec<u64> =
        drained.iter().map(|se| se.event.metadata["s"].as_u64().unwrap()).collect();
    seqs.sort_unstable();
    assert_eq!(seqs, (0..N).collect::<Vec<_>>(), "restored stream lost or duplicated events");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Reopening a directory while the producing service is still alive (its
/// plane mid-drain) is the archive path: it must succeed cleanly and see
/// a committed per-partition prefix — contiguous offsets from zero, no
/// gaps, no torn tail — never an error or a corrupt log.
#[test]
fn reopen_racing_a_live_plane_sees_a_clean_prefix() {
    let dir = temp_dir("racing");
    const N: u64 = 5_000;
    let svc = durable_real_time(&dir, 2);
    svc.create_topic("t", TopicConfig { partitions: 2 }).unwrap();
    let mut producer =
        svc.producer("t", ProducerConfig { batch_size: 32, ..Default::default() }).unwrap();
    for s in 0..N {
        producer.push(ev(s)).unwrap();
        if s % 512 == 0 {
            // periodic commit points so the racing reopens have
            // something durable to see
            svc.sync().unwrap();
        }
    }
    producer.flush().unwrap();

    // while the plane may still hold queued batches, reopen the same
    // directory a few times: each must see a clean committed prefix
    let mut last_seen = 0u64;
    for _ in 0..3 {
        let (archive, recovery) = MofkaService::reopen(&dir).unwrap();
        assert!(recovery.restored_events <= N);
        let mut consumer =
            archive.consumer("t", ConsumerConfig { group: "probe".into(), prefetch: 256 }).unwrap();
        let drained = consumer.drain_all().unwrap();
        assert_eq!(drained.len() as u64, recovery.restored_events);
        // committed prefixes only grow (monotone across reopens)
        assert!(drained.len() as u64 >= last_seen, "committed prefix shrank");
        last_seen = drained.len() as u64;
        // per partition: offsets are the contiguous range 0..len
        let mut next: std::collections::HashMap<u32, u64> = Default::default();
        for se in &drained {
            let want = next.entry(se.id.partition).or_insert(0);
            assert_eq!(se.id.offset, *want, "gap in partition {}", se.id.partition);
            *want += 1;
        }
    }

    // after a graceful shutdown the full stream is visible
    svc.shutdown().unwrap();
    let (_, recovery) = MofkaService::reopen(&dir).unwrap();
    assert_eq!(recovery.restored_events, N);
    drop(svc);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Dropping a real-time service without `shutdown` still never corrupts:
/// whatever was committed reopens as a clean prefix, and a subsequent
/// reopen is deterministic (same committed state both times).
#[test]
fn ungraceful_drop_leaves_a_reopenable_store() {
    let dir = temp_dir("drop");
    const N: u64 = 2_000;
    {
        let svc = durable_real_time(&dir, 2);
        svc.create_topic("t", TopicConfig { partitions: 2 }).unwrap();
        let mut producer =
            svc.producer("t", ProducerConfig { batch_size: 128, ..Default::default() }).unwrap();
        for s in 0..N {
            producer.push(ev(s)).unwrap();
        }
        producer.flush().unwrap();
        // no shutdown, no sync: the service (and its plane) just drops
    }
    let (_, first) = MofkaService::reopen(&dir).unwrap();
    let (_, second) = MofkaService::reopen(&dir).unwrap();
    assert!(first.restored_events <= N);
    assert_eq!(
        first.restored_events, second.restored_events,
        "reopen of a quiesced directory must be deterministic"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
