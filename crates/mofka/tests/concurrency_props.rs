//! Concurrency properties of the sharded data plane.
//!
//! Three invariants, property-tested over randomized shapes:
//!
//! 1. **Per-partition ordering** — however producer flushes interleave
//!    with shard steps on a manual plane, each partition's log holds that
//!    producer's events in push order.
//! 2. **Exactly-once per group** — however pulls interleave across the
//!    members of a consumer group, every event is delivered to exactly
//!    one member, and no event is lost.
//! 3. **No loss under concurrent flush/pull** — with real producer and
//!    consumer threads racing on a spawned plane, the group still drains
//!    exactly the produced set.

use proptest::prelude::*;

use dtf_mofka::{ConsumerConfig, Event, MofkaService, ProducerConfig, TopicConfig};

fn ev(producer: u64, seq: u64) -> Event {
    Event::meta_only(serde_json::json!({ "p": producer, "s": seq }))
}

fn key(e: &Event) -> (u64, u64) {
    (e.metadata["p"].as_u64().unwrap(), e.metadata["s"].as_u64().unwrap())
}

proptest! {
    /// Randomized flush/step interleavings on a manual plane keep every
    /// partition's log in per-producer push order, and a final barrier
    /// always drains the queues completely.
    #[test]
    fn per_partition_order_survives_any_step_schedule(
        partitions in 1u32..5,
        shards in 1usize..5,
        batch in 1usize..17,
        events in 8u64..200,
        // each entry: after this many pushes, run one step of this shard
        schedule in proptest::collection::vec((1u64..32, 0usize..8), 0..64),
    ) {
        let svc = MofkaService::manual(shards);
        svc.create_topic("t", TopicConfig { partitions }).unwrap();
        let plane = svc.plane().unwrap().clone();
        let mut producer = svc
            .producer("t", ProducerConfig { batch_size: batch, ..Default::default() })
            .unwrap();

        let mut schedule = schedule.into_iter();
        let mut next = schedule.next();
        let mut since_step = 0u64;
        for s in 0..events {
            producer.push(ev(0, s)).unwrap();
            since_step += 1;
            if let Some((after, shard)) = next {
                if since_step >= after {
                    plane.step_shard(shard % plane.num_shards());
                    since_step = 0;
                    next = schedule.next();
                }
            }
        }
        producer.sync().unwrap(); // flush + inline drain on a manual plane
        for i in 0..plane.num_shards() {
            prop_assert_eq!(plane.queued_jobs(i), 0, "barrier left shard {} non-empty", i);
        }

        // one fresh group drains everything; per partition, seqs of the
        // single producer must come out strictly increasing
        let mut consumer = svc
            .consumer("t", ConsumerConfig { group: "check".into(), prefetch: 64 })
            .unwrap();
        let drained = consumer.drain_all().unwrap();
        prop_assert_eq!(drained.len() as u64, events);
        let mut last_seq: std::collections::HashMap<u32, u64> = Default::default();
        for se in &drained {
            let (_, s) = key(&se.event);
            if let Some(prev) = last_seq.insert(se.id.partition, s) {
                prop_assert!(
                    s > prev,
                    "partition {} delivered seq {} after {}",
                    se.id.partition, s, prev
                );
            }
        }
    }

    /// However pulls interleave across a group's members (decided by a
    /// randomized round-robin schedule), each event lands on exactly one
    /// member and none are lost.
    #[test]
    fn group_delivery_is_exactly_once_across_members(
        partitions in 1u32..4,
        members in 1usize..5,
        prefetch in 1usize..33,
        events in 1u64..300,
        pulls in proptest::collection::vec((0usize..4, 1usize..64), 1..48),
    ) {
        let svc = MofkaService::new();
        svc.create_topic("t", TopicConfig { partitions }).unwrap();
        let mut producer = svc.producer("t", ProducerConfig::default()).unwrap();
        for s in 0..events {
            producer.push(ev(0, s)).unwrap();
        }
        producer.flush().unwrap();

        let mut group: Vec<_> = (0..members)
            .map(|_| {
                svc.consumer("t", ConsumerConfig { group: "g".into(), prefetch }).unwrap()
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        fn deliver(
            batch: Vec<dtf_mofka::StoredEvent>,
            seen: &mut std::collections::HashSet<(u64, u64)>,
        ) {
            for se in batch {
                prop_assert!(seen.insert(key(&se.event)), "duplicate delivery {:?}", se.id);
            }
        }
        for (m, n) in pulls {
            let batch = group[m % members].pull(n).unwrap();
            deliver(batch, &mut seen);
        }
        // whatever the schedule left behind, the group can always finish
        for member in &mut group {
            let rest = member.drain_all().unwrap();
            deliver(rest, &mut seen);
        }
        prop_assert_eq!(seen.len() as u64, events, "events lost");
    }
}

proptest! {
    // real threads are slow; a handful of cases is still dozens of
    // distinct producer/consumer races per test run
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Real producer threads racing real pipelined consumers on a
    /// spawned plane: the group drains exactly the produced set.
    #[test]
    fn nothing_is_lost_under_concurrent_flush_and_pull(
        producers in 1usize..5,
        partitions in 1u32..4,
        shards in 1usize..4,
        batch in 1usize..33,
        per_producer in 1u64..200,
        depth in 1usize..4,
    ) {
        let svc = MofkaService::real_time(shards);
        svc.create_topic("t", TopicConfig { partitions }).unwrap();
        let total = producers as u64 * per_producer;

        let consumed = std::thread::scope(|scope| {
            for p in 0..producers {
                let svc = &svc;
                scope.spawn(move || {
                    let mut producer = svc
                        .producer("t", ProducerConfig { batch_size: batch, ..Default::default() })
                        .unwrap();
                    for s in 0..per_producer {
                        producer.push(ev(p as u64, s)).unwrap();
                    }
                    producer.sync().unwrap();
                });
            }
            let mut consumer = svc
                .consumer_pipelined("t", ConsumerConfig { group: "g".into(), prefetch: 32 }, depth)
                .unwrap();
            let mut seen = std::collections::HashSet::new();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while (seen.len() as u64) < total && std::time::Instant::now() < deadline {
                for se in consumer.pull(64).unwrap() {
                    assert!(seen.insert(key(&se.event)), "duplicate delivery {:?}", se.id);
                }
            }
            seen
        });
        prop_assert_eq!(consumed.len() as u64, total, "events lost in the race");
    }
}
