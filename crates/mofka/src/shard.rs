//! The sharded concurrent data plane — real-time / service mode.
//!
//! In virtual-time (simulation) mode every producer appends synchronously
//! under the partition lock, which is what keeps simulated runs
//! byte-identical. Service mode replaces that with shard ownership: each
//! `(topic, partition)` pair is owned by exactly one **shard**, a worker
//! thread with its own job queue. Producers hand whole batches to the
//! owning shard over the queue (one mutex hit per *batch*, never the
//! partition lock) and return immediately — Mofka's nonblocking client
//! model. The owning worker is the only writer of its partitions, so
//! concurrent producers never contend on a partition lock; readers still
//! take the partition `RwLock` read side as before.
//!
//! The handoff protocol:
//!
//! * `Append` jobs carry a batch for one partition. Per-queue FIFO order
//!   plus single ownership gives the same guarantee as the synchronous
//!   path: one producer's batches land in a partition in flush order.
//! * `Barrier` jobs ack when processed. Because the queue is FIFO, an
//!   ack proves every job enqueued *before* the barrier has been applied.
//!   [`DataPlane::barrier`] fans a barrier to every shard and waits for
//!   all acks — the flush/visibility point for [`Producer::sync`]
//!   (crate::producer::Producer::sync) and `MofkaService::sync`.
//! * Append errors are deferred (enqueue is infallible) and surfaced by
//!   the next `barrier()` or `shutdown()`, mirroring how the durable KV
//!   defers WAL errors to its `sync()` commit point.
//! * Shutdown **drains before stopping**: a stopping shard keeps applying
//!   queued jobs until its queue is empty and only then exits, so queued
//!   batches are never silently dropped (see the restore/queued-append
//!   tests). Dropping the last handle to the plane joins the workers.
//!
//! The plane can also be built **manual** (no worker threads): jobs
//! queue up and the caller applies them one at a time with
//! [`DataPlane::step_shard`]. That is the deterministic spine of the
//! seeded-schedule interleaving harness (`tests/interleave.rs`) and the
//! concurrency property tests — every interleaving of "producer enqueues"
//! and "shard applies" steps is reachable and reproducible from a seed.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

use dtf_core::error::{DtfError, Result};

use crate::event::Event;
use crate::topic::Topic;

/// Soft bound on queued jobs per shard: producers enqueueing into a
/// spawned (threaded) plane block once the owning shard is this far
/// behind — backpressure instead of unbounded memory. Manual planes are
/// never bounded (the harness controls every step; blocking would
/// deadlock it).
const MAX_QUEUED_JOBS: usize = 1024;

/// One unit of work for a shard worker.
enum Job {
    /// Append `events` to `partition` of `topic` (the shard owns that
    /// partition, so applying it never races another writer).
    Append { topic: Arc<Topic>, partition: u32, events: Vec<Event> },
    /// Ack when reached; FIFO order makes the ack a completion proof for
    /// everything enqueued before it.
    Barrier(mpsc::Sender<()>),
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Job::Append { topic, partition, events } => f
                .debug_struct("Append")
                .field("topic", &topic.name())
                .field("partition", partition)
                .field("events", &events.len())
                .finish(),
            Job::Barrier(_) => f.write_str("Barrier"),
        }
    }
}

#[derive(Debug, Default)]
struct ShardState {
    jobs: VecDeque<Job>,
    stopping: bool,
    /// First append error since the last barrier/shutdown that surfaced it.
    error: Option<String>,
}

/// Append-activity signal shared by every shard of one plane: a sequence
/// number bumped after each applied append batch, with a condvar so
/// subscription feeds ([`crate::feed::GroupFeed`]) can sleep until new
/// events land instead of spinning on empty claims. Readers remember the
/// last sequence they acted on and wait for it to move.
#[derive(Default)]
pub struct Activity {
    seq: Mutex<u64>,
    cv: Condvar,
}

impl std::fmt::Debug for Activity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Activity").field("seq", &self.seq()).finish()
    }
}

impl Activity {
    /// Current activity sequence (monotone; bumped per applied batch).
    pub fn seq(&self) -> u64 {
        *self.seq.lock()
    }

    fn bump(&self) {
        *self.seq.lock() += 1;
        self.cv.notify_all();
    }

    /// Block until the sequence moves past `seen` or `timeout` elapses;
    /// returns the latest sequence either way.
    pub fn wait_past(&self, seen: u64, timeout: std::time::Duration) -> u64 {
        let deadline = std::time::Instant::now() + timeout;
        let mut seq = self.seq.lock();
        while *seq <= seen {
            let now = std::time::Instant::now();
            if now >= deadline {
                break;
            }
            if self.cv.wait_for(&mut seq, deadline - now).timed_out() {
                break;
            }
        }
        *seq
    }
}

/// One shard: a FIFO job queue plus the condvars that coordinate its
/// worker (when spawned) and producer backpressure.
#[derive(Default)]
struct Shard {
    state: Mutex<ShardState>,
    /// Signaled when a job arrives or the shard starts stopping.
    ready: Condvar,
    /// Signaled when the worker pops a job (space for blocked producers).
    space: Condvar,
    /// Plane-wide append signal (shared by all shards of one plane).
    activity: Arc<Activity>,
}

impl Shard {
    fn with_activity(activity: Arc<Activity>) -> Self {
        Self { activity, ..Default::default() }
    }
    /// Enqueue a job. `bounded` engages producer backpressure (spawned
    /// planes only); a stopping shard accepts no new jobs.
    fn push(&self, job: Job, bounded: bool) -> Result<()> {
        let mut st = self.state.lock();
        while bounded && st.jobs.len() >= MAX_QUEUED_JOBS && !st.stopping {
            self.space.wait(&mut st);
        }
        if st.stopping {
            return Err(DtfError::IllegalState("data plane is shut down".into()));
        }
        st.jobs.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    /// Apply one queued job if any; returns whether a job ran. This is
    /// the single-step state transition the interleaving harness drives.
    fn step(&self) -> bool {
        let job = {
            let mut st = self.state.lock();
            let job = st.jobs.pop_front();
            if job.is_some() {
                self.space.notify_one();
            }
            job
        };
        match job {
            Some(job) => {
                self.apply(job);
                true
            }
            None => false,
        }
    }

    fn apply(&self, job: Job) {
        match job {
            Job::Append { topic, partition, events } => {
                if let Err(e) = topic.append_batch(partition, events) {
                    self.state.lock().error.get_or_insert(e.to_string());
                } else {
                    // wake subscription feeds sleeping on plane activity
                    self.activity.bump();
                }
            }
            Job::Barrier(ack) => {
                // the waiter may have given up (barrier error path); a
                // dead receiver is fine
                let _ = ack.send(());
            }
        }
    }

    /// Worker loop: apply jobs until told to stop, then drain whatever
    /// is still queued before exiting (drain-then-stop).
    fn run(&self) {
        loop {
            let job = {
                let mut st = self.state.lock();
                loop {
                    if let Some(job) = st.jobs.pop_front() {
                        self.space.notify_one();
                        break Some(job);
                    }
                    if st.stopping {
                        break None;
                    }
                    self.ready.wait(&mut st);
                }
            };
            match job {
                Some(job) => self.apply(job),
                None => return,
            }
        }
    }

    fn begin_stop(&self) {
        let mut st = self.state.lock();
        st.stopping = true;
        self.ready.notify_all();
        self.space.notify_all();
    }

    fn take_error(&self) -> Option<String> {
        self.state.lock().error.take()
    }

    fn queued(&self) -> usize {
        self.state.lock().jobs.len()
    }
}

/// The data plane: every topic partition mapped to an owning shard.
///
/// Spawned planes run one worker thread per shard; manual planes are
/// stepped explicitly (tests). Cheap to share: the service holds one
/// `Arc<DataPlane>` and hands clones to producers.
pub struct DataPlane {
    shards: Vec<Arc<Shard>>,
    /// Worker handles, joined exactly once (by `shutdown` or `Drop`).
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Whether `push` applies backpressure (spawned planes only).
    bounded: bool,
    /// Plane-wide append signal, shared with subscription feeds.
    activity: Arc<Activity>,
}

impl std::fmt::Debug for DataPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataPlane")
            .field("shards", &self.shards.len())
            .field("bounded", &self.bounded)
            .finish_non_exhaustive()
    }
}

impl DataPlane {
    /// A plane with `shards` worker threads (0 = auto: the machine's
    /// available parallelism, at least 2 so handoff is exercised even on
    /// one core).
    pub fn spawned(shards: usize) -> Arc<Self> {
        let n = if shards == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2).max(2)
        } else {
            shards
        };
        let activity = Arc::new(Activity::default());
        let shards: Vec<Arc<Shard>> =
            (0..n).map(|_| Arc::new(Shard::with_activity(activity.clone()))).collect();
        let workers = shards
            .iter()
            .map(|s| {
                let shard = s.clone();
                std::thread::Builder::new()
                    .name("mofka-shard".into())
                    .spawn(move || shard.run())
                    .expect("spawn shard worker")
            })
            .collect();
        Arc::new(Self { shards, workers: Mutex::new(workers), bounded: true, activity })
    }

    /// A plane with no worker threads: jobs queue until the caller
    /// applies them with [`Self::step_shard`]. Deterministic — the
    /// interleaving-test mode.
    pub fn manual(shards: usize) -> Arc<Self> {
        assert!(shards >= 1, "a plane needs at least one shard");
        let activity = Arc::new(Activity::default());
        Arc::new(Self {
            shards: (0..shards).map(|_| Arc::new(Shard::with_activity(activity.clone()))).collect(),
            workers: Mutex::new(Vec::new()),
            bounded: false,
            activity,
        })
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The plane's append-activity signal: bumped after every applied
    /// append batch, waitable by subscription feeds.
    pub fn activity(&self) -> Arc<Activity> {
        self.activity.clone()
    }

    /// The shard owning `(topic, partition)`. FNV over the topic name,
    /// then consecutive partitions on consecutive shards — distinct
    /// partitions of one topic land on distinct shards whenever there
    /// are at least as many shards as partitions.
    pub fn shard_for(&self, topic: &str, partition: u32) -> usize {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in topic.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h.wrapping_add(partition as u64) % self.shards.len() as u64) as usize
    }

    /// Hand a batch to the owning shard. Nonblocking apart from
    /// backpressure; append errors surface at the next [`Self::barrier`]
    /// or [`Self::shutdown`]. Errors immediately only if the plane is
    /// already shut down.
    pub fn enqueue_append(
        &self,
        topic: &Arc<Topic>,
        partition: u32,
        events: Vec<Event>,
    ) -> Result<()> {
        let shard = &self.shards[self.shard_for(topic.name(), partition)];
        shard.push(Job::Append { topic: topic.clone(), partition, events }, self.bounded)
    }

    /// Apply one queued job on shard `i`; returns whether one ran.
    /// (Manual planes; harmless but pointless on spawned planes.)
    pub fn step_shard(&self, i: usize) -> bool {
        self.shards[i].step()
    }

    /// Jobs currently queued on shard `i`.
    pub fn queued_jobs(&self, i: usize) -> usize {
        self.shards[i].queued()
    }

    /// Wait until every job enqueued before this call has been applied,
    /// then surface any append error deferred since the last barrier.
    /// On a manual plane this drains every queue inline instead.
    pub fn barrier(&self) -> Result<()> {
        if self.workers.lock().is_empty() {
            while self.shards.iter().any(|s| s.step()) {}
        } else {
            let (tx, rx) = mpsc::channel();
            let mut expected = 0usize;
            for shard in &self.shards {
                // a stopping shard has already drained (or will, before
                // its worker exits); skip rather than error so barriers
                // racing shutdown stay benign
                if shard.push(Job::Barrier(tx.clone()), self.bounded).is_ok() {
                    expected += 1;
                }
            }
            drop(tx);
            for _ in 0..expected {
                rx.recv().map_err(|_| {
                    DtfError::IllegalState("shard worker died before barrier ack".into())
                })?;
            }
        }
        self.collect_errors()
    }

    fn collect_errors(&self) -> Result<()> {
        for shard in &self.shards {
            if let Some(e) = shard.take_error() {
                return Err(DtfError::Io(format!("deferred shard append error: {e}")));
            }
        }
        Ok(())
    }

    /// Drain every queue, stop the workers, and surface deferred errors.
    /// Idempotent; `Drop` calls it best-effort.
    pub fn shutdown(&self) -> Result<()> {
        for shard in &self.shards {
            shard.begin_stop();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock());
        for h in handles {
            let _ = h.join();
        }
        // manual planes (and any jobs enqueued after the workers left,
        // which push() now rejects): apply what is left inline
        while self.shards.iter().any(|s| s.step()) {}
        self.collect_errors()
    }
}

impl Drop for DataPlane {
    fn drop(&mut self) {
        // drain-then-stop: queued batches are applied, never dropped
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicConfig;
    use crate::warabi::Warabi;
    use serde_json::json;

    fn topic(name: &str, parts: u32) -> Arc<Topic> {
        Arc::new(Topic::new(
            name,
            &TopicConfig { partitions: parts },
            Arc::new(Warabi::new()),
            None,
        ))
    }

    #[test]
    fn spawned_plane_applies_batches_and_barrier_waits() {
        let plane = DataPlane::spawned(3);
        let t = topic("t", 4);
        for p in 0..4 {
            plane.enqueue_append(&t, p, vec![Event::meta_only(json!(p))]).unwrap();
        }
        plane.barrier().unwrap();
        assert_eq!(t.total_len(), 4);
    }

    #[test]
    fn manual_plane_holds_jobs_until_stepped() {
        let plane = DataPlane::manual(2);
        let t = topic("t", 2);
        plane.enqueue_append(&t, 0, vec![Event::meta_only(json!(0))]).unwrap();
        plane.enqueue_append(&t, 1, vec![Event::meta_only(json!(1))]).unwrap();
        assert_eq!(t.total_len(), 0, "nothing applied before stepping");
        let s0 = plane.shard_for("t", 0);
        assert!(plane.step_shard(s0));
        assert_eq!(t.partition_len(0).unwrap(), 1);
        // a barrier on a manual plane drains everything inline
        plane.barrier().unwrap();
        assert_eq!(t.total_len(), 2);
        assert!(!plane.step_shard(s0), "queues empty");
    }

    #[test]
    fn partitions_of_one_topic_spread_over_shards() {
        let plane = DataPlane::manual(4);
        let owners: std::collections::HashSet<usize> =
            (0..4).map(|p| plane.shard_for("events", p)).collect();
        assert_eq!(owners.len(), 4, "4 partitions over 4 shards must use all shards");
    }

    #[test]
    fn append_errors_are_deferred_to_the_barrier() {
        let plane = DataPlane::spawned(2);
        let t = topic("t", 1);
        plane.enqueue_append(&t, 7, vec![Event::meta_only(json!(1))]).unwrap();
        let err = plane.barrier().unwrap_err();
        assert!(err.to_string().contains("partition 7"), "got: {err}");
        // the error was taken; a clean barrier follows
        plane.barrier().unwrap();
    }

    #[test]
    fn shutdown_drains_queued_jobs_before_stopping() {
        let t = topic("t", 1);
        let plane = DataPlane::manual(1);
        for i in 0..10 {
            plane.enqueue_append(&t, 0, vec![Event::meta_only(json!(i))]).unwrap();
        }
        assert_eq!(t.total_len(), 0);
        plane.shutdown().unwrap();
        assert_eq!(t.total_len(), 10, "drain-then-stop");
        // post-shutdown enqueues error cleanly instead of vanishing
        let err = plane.enqueue_append(&t, 0, vec![Event::meta_only(json!(99))]).unwrap_err();
        assert!(err.to_string().contains("shut down"));
    }

    #[test]
    fn dropping_the_plane_drains_queued_jobs() {
        let t = topic("t", 2);
        {
            let plane = DataPlane::manual(2);
            for i in 0..6 {
                plane.enqueue_append(&t, i % 2, vec![Event::meta_only(json!(i))]).unwrap();
            }
        } // Drop
        assert_eq!(t.total_len(), 6, "queued batches survive Drop");
    }

    #[test]
    fn concurrent_producers_one_owner_per_partition() {
        let plane = DataPlane::spawned(4);
        let t = topic("t", 4);
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let plane = plane.clone();
                let t = t.clone();
                std::thread::spawn(move || {
                    for j in 0..100u64 {
                        plane
                            .enqueue_append(
                                &t,
                                (i % 4) as u32,
                                vec![Event::meta_only(json!({ "t": i, "j": j }))],
                            )
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        plane.barrier().unwrap();
        assert_eq!(t.total_len(), 800);
        // per-producer order within each partition (FIFO queue + single owner)
        for p in 0..4 {
            let evs = t.read(p, 0, 10_000).unwrap();
            let mut last: std::collections::HashMap<u64, u64> = Default::default();
            for e in &evs {
                let producer = e.event.metadata["t"].as_u64().unwrap();
                let j = e.event.metadata["j"].as_u64().unwrap();
                if let Some(prev) = last.insert(producer, j) {
                    assert!(j > prev, "producer {producer} reordered in partition {p}");
                }
            }
        }
    }
}
