//! Bedrock-analog bootstrapping: assemble a Mofka service from a JSON
//! deployment description, the way Mochi's Bedrock spins up a composed
//! service from a configuration file.

use serde::{Deserialize, Serialize};

use dtf_core::error::{DtfError, Result};

use crate::service::{MofkaService, ServiceConfig};
use crate::topic::TopicConfig;

/// One topic in the deployment description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopicSpec {
    pub name: String,
    #[serde(default = "default_partitions")]
    pub partitions: u32,
}

fn default_partitions() -> u32 {
    4
}

/// Deployment description for one Mofka instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BedrockConfig {
    pub topics: Vec<TopicSpec>,
}

impl BedrockConfig {
    /// The deployment the WMS plugins expect: one topic per provenance
    /// record family (§III-E2).
    pub fn wms_default() -> Self {
        Self {
            topics: vec![
                TopicSpec { name: "task-meta".into(), partitions: 4 },
                TopicSpec { name: "task-transitions".into(), partitions: 4 },
                TopicSpec { name: "worker-transitions".into(), partitions: 4 },
                TopicSpec { name: "task-done".into(), partitions: 4 },
                TopicSpec { name: "comm-events".into(), partitions: 4 },
                TopicSpec { name: "io-records".into(), partitions: 4 },
                TopicSpec { name: "proxy-events".into(), partitions: 4 },
                TopicSpec { name: "warnings".into(), partitions: 1 },
                TopicSpec { name: "logs".into(), partitions: 1 },
            ],
        }
    }

    pub fn from_json(json: &str) -> Result<Self> {
        let cfg: BedrockConfig = serde_json::from_str(json)?;
        cfg.validate()?;
        Ok(cfg)
    }

    pub fn validate(&self) -> Result<()> {
        if self.topics.is_empty() {
            return Err(DtfError::Config("bedrock config has no topics".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for t in &self.topics {
            if t.partitions == 0 {
                return Err(DtfError::Config(format!("topic {} has zero partitions", t.name)));
            }
            if !seen.insert(&t.name) {
                return Err(DtfError::Config(format!("duplicate topic {}", t.name)));
            }
        }
        Ok(())
    }

    /// Spin up an in-memory service per this description.
    pub fn bootstrap(&self) -> Result<MofkaService> {
        self.bootstrap_with(&ServiceConfig::default())
    }

    /// Spin up a service per this description and `svc_cfg` (which may
    /// request persistence). Topics already restored from a persisted
    /// directory are kept, not re-created.
    pub fn bootstrap_with(&self, svc_cfg: &ServiceConfig) -> Result<MofkaService> {
        self.validate()?;
        let svc = MofkaService::with_config(svc_cfg)?;
        for t in &self.topics {
            if svc.topic(&t.name).is_err() {
                svc.create_topic(&t.name, TopicConfig { partitions: t.partitions })?;
            }
        }
        // record the deployment description itself (provenance of the
        // provenance system)
        svc.yokan().put("bedrock/config", serde_json::to_vec(self).expect("config serializes"));
        Ok(svc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_deployment_bootstraps_all_topics() {
        let svc = BedrockConfig::wms_default().bootstrap().unwrap();
        let names = svc.topic_names();
        for expect in [
            "task-meta",
            "task-transitions",
            "worker-transitions",
            "task-done",
            "comm-events",
            "io-records",
            "warnings",
            "logs",
        ] {
            assert!(names.contains(&expect.to_string()), "missing {expect}");
        }
    }

    #[test]
    fn json_roundtrip_with_default_partitions() {
        let cfg = BedrockConfig::from_json(
            r#"{"topics": [{"name": "a"}, {"name": "b", "partitions": 2}]}"#,
        )
        .unwrap();
        assert_eq!(cfg.topics[0].partitions, 4);
        assert_eq!(cfg.topics[1].partitions, 2);
        let svc = cfg.bootstrap().unwrap();
        assert_eq!(svc.topic("a").unwrap().num_partitions(), 4);
        assert_eq!(svc.topic("b").unwrap().num_partitions(), 2);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(BedrockConfig::from_json(r#"{"topics": []}"#).is_err());
        assert!(
            BedrockConfig::from_json(r#"{"topics": [{"name": "a", "partitions": 0}]}"#).is_err()
        );
        assert!(BedrockConfig::from_json(r#"{"topics": [{"name": "a"}, {"name": "a"}]}"#).is_err());
        assert!(BedrockConfig::from_json("not json").is_err());
    }

    #[test]
    fn bootstrap_records_config_in_yokan() {
        let svc = BedrockConfig::wms_default().bootstrap().unwrap();
        let raw = svc.yokan().get("bedrock/config").unwrap();
        let cfg: BedrockConfig = serde_json::from_slice(&raw).unwrap();
        assert_eq!(cfg, BedrockConfig::wms_default());
    }
}
