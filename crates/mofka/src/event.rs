//! Events: a JSON metadata part plus a raw data payload (paper §III-B:
//! "Each event has two parts. The first is a data portion that contains the
//! raw data payload. The second is metadata expressed in JSON format").

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a stored event: partition number and offset within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId {
    pub partition: u32,
    pub offset: u64,
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.partition, self.offset)
    }
}

/// One event as produced/consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// JSON metadata describing the payload.
    pub metadata: serde_json::Value,
    /// Raw data payload (may be empty; provenance events typically carry
    /// everything in metadata).
    pub data: Bytes,
}

impl Event {
    pub fn new(metadata: serde_json::Value, data: Bytes) -> Self {
        Self { metadata, data }
    }

    /// Event with metadata only (the common case for provenance records).
    pub fn meta_only(metadata: serde_json::Value) -> Self {
        Self { metadata, data: Bytes::new() }
    }

    /// Serialize any `Serialize` value into a metadata-only event.
    pub fn from_serializable<T: Serialize>(value: &T) -> Result<Self, serde_json::Error> {
        Ok(Self::meta_only(serde_json::to_value(value)?))
    }

    /// Approximate wire size of the event, bytes (metadata rendered as JSON
    /// plus payload length). Used for batching thresholds and stats.
    pub fn wire_size(&self) -> usize {
        // serde_json::to_string on a Value cannot fail
        serde_json::to_string(&self.metadata).map(|s| s.len()).unwrap_or(0) + self.data.len()
    }
}

/// A stored event: the event plus its assigned id.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEvent {
    pub id: EventId,
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn meta_only_has_empty_payload() {
        let e = Event::meta_only(json!({"k": 1}));
        assert!(e.data.is_empty());
        assert_eq!(e.metadata["k"], 1);
    }

    #[test]
    fn from_serializable_roundtrip() {
        #[derive(Serialize)]
        struct S {
            a: u32,
            b: String,
        }
        let e = Event::from_serializable(&S { a: 7, b: "x".into() }).unwrap();
        assert_eq!(e.metadata["a"], 7);
        assert_eq!(e.metadata["b"], "x");
    }

    #[test]
    fn wire_size_counts_both_parts() {
        let e = Event::new(json!({"k": "v"}), Bytes::from_static(b"12345"));
        // {"k":"v"} is 9 bytes + 5 payload
        assert_eq!(e.wire_size(), 14);
    }

    #[test]
    fn event_id_ordering_and_display() {
        let a = EventId { partition: 0, offset: 5 };
        let b = EventId { partition: 1, offset: 0 };
        assert!(a < b);
        assert_eq!(a.to_string(), "0:5");
    }
}
