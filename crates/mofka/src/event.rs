//! Events: a metadata part plus a raw data payload (paper §III-B:
//! "Each event has two parts. The first is a data portion that contains the
//! raw data payload. The second is metadata expressed in JSON format").
//!
//! Metadata is *logically* JSON but does not have to exist as a JSON tree:
//! provenance records produced by the WMS plugins travel as typed
//! [`ProvRecord`]s behind an `Arc`, and are only rendered to JSON at
//! export/replay boundaries. Generic producers (tests, ad-hoc tooling)
//! still push plain [`serde_json::Value`] metadata.

use bytes::Bytes;
use dtf_core::events::ProvRecord;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a stored event: partition number and offset within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId {
    pub partition: u32,
    pub offset: u64,
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.partition, self.offset)
    }
}

/// Event metadata: either a generic JSON tree or a typed provenance record.
/// Both render to the same JSON text; the typed form skips building the
/// tree entirely and clones by bumping a refcount.
#[derive(Debug, Clone)]
pub enum Metadata {
    /// Generic JSON metadata (tests, tooling, non-provenance producers).
    Json(serde_json::Value),
    /// A typed provenance record, shared by reference through producer
    /// buffers, partition logs, and consumers without re-serialization.
    Typed(Arc<ProvRecord>),
}

static NULL: serde_json::Value = serde_json::Value::Null;

impl Metadata {
    /// Render to a JSON tree. The lazy-render boundary — only export,
    /// archives, and generic consumers pay this.
    pub fn to_value(&self) -> serde_json::Value {
        match self {
            Metadata::Json(v) => v.clone(),
            Metadata::Typed(rec) => rec.to_value(),
        }
    }

    /// The JSON tree, if this metadata is the generic form.
    pub fn as_json(&self) -> Option<&serde_json::Value> {
        match self {
            Metadata::Json(v) => Some(v),
            Metadata::Typed(_) => None,
        }
    }

    /// The typed record, if this metadata is the typed form.
    pub fn as_record(&self) -> Option<&Arc<ProvRecord>> {
        match self {
            Metadata::Json(_) => None,
            Metadata::Typed(rec) => Some(rec),
        }
    }

    /// Exact byte length of the compact JSON rendering, without rendering:
    /// typed records compute it arithmetically, JSON trees stream into a
    /// counting sink.
    pub fn encoded_size(&self) -> usize {
        match self {
            Metadata::Json(v) => serde_json::encoded_size(v),
            Metadata::Typed(rec) => rec.encoded_size(),
        }
    }

    /// Field lookup on generic JSON metadata. Typed records expose their
    /// routing key structurally (see [`ProvRecord::task_key`]) rather than
    /// by name, so this returns `None` for them.
    pub fn get(&self, field: &str) -> Option<&serde_json::Value> {
        match self {
            Metadata::Json(v) => v.get(field),
            Metadata::Typed(_) => None,
        }
    }
}

/// `metadata["field"]` sugar, matching `Value` indexing: missing fields
/// (and any field of typed metadata) index to `Null`.
impl std::ops::Index<&str> for Metadata {
    type Output = serde_json::Value;

    fn index(&self, field: &str) -> &serde_json::Value {
        match self {
            Metadata::Json(v) => &v[field],
            Metadata::Typed(_) => &NULL,
        }
    }
}

impl PartialEq for Metadata {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Metadata::Json(a), Metadata::Json(b)) => a == b,
            (Metadata::Typed(a), Metadata::Typed(b)) => a == b,
            // mixed forms compare by their common JSON rendering
            (a, b) => a.to_value() == b.to_value(),
        }
    }
}

impl PartialEq<serde_json::Value> for Metadata {
    fn eq(&self, other: &serde_json::Value) -> bool {
        match self {
            Metadata::Json(v) => v == other,
            Metadata::Typed(rec) => rec.to_value() == *other,
        }
    }
}

impl From<serde_json::Value> for Metadata {
    fn from(v: serde_json::Value) -> Self {
        Metadata::Json(v)
    }
}

impl From<ProvRecord> for Metadata {
    fn from(rec: ProvRecord) -> Self {
        Metadata::Typed(Arc::new(rec))
    }
}

impl From<Arc<ProvRecord>> for Metadata {
    fn from(rec: Arc<ProvRecord>) -> Self {
        Metadata::Typed(rec)
    }
}

/// One event as produced/consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Metadata describing the payload (JSON tree or typed record).
    pub metadata: Metadata,
    /// Raw data payload (may be empty; provenance events typically carry
    /// everything in metadata).
    pub data: Bytes,
}

impl Event {
    pub fn new(metadata: impl Into<Metadata>, data: Bytes) -> Self {
        Self { metadata: metadata.into(), data }
    }

    /// Event with metadata only (the common case for provenance records).
    pub fn meta_only(metadata: impl Into<Metadata>) -> Self {
        Self { metadata: metadata.into(), data: Bytes::new() }
    }

    /// Metadata-only event carrying a typed provenance record.
    pub fn typed(record: impl Into<ProvRecord>) -> Self {
        Self::meta_only(record.into())
    }

    /// Serialize any `Serialize` value into a metadata-only event. The
    /// eager-JSON path — prefer [`Event::typed`] for provenance records.
    pub fn from_serializable<T: Serialize>(value: &T) -> Result<Self, serde_json::Error> {
        Ok(Self::meta_only(serde_json::to_value(value)?))
    }

    /// Exact wire size of the event, bytes (metadata as compact JSON plus
    /// payload length). Used for batching thresholds and stats. Computed
    /// without serializing: typed records count arithmetically, JSON trees
    /// stream into a counting sink.
    pub fn wire_size(&self) -> usize {
        self.metadata.encoded_size() + self.data.len()
    }
}

/// A stored event: the event plus its assigned id.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredEvent {
    pub id: EventId,
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::events::{LogEntry, LogLevel, LogSource};
    use dtf_core::ids::ClientId;
    use dtf_core::time::Time;
    use serde_json::json;

    #[test]
    fn meta_only_has_empty_payload() {
        let e = Event::meta_only(json!({"k": 1}));
        assert!(e.data.is_empty());
        assert_eq!(e.metadata["k"], 1);
    }

    #[test]
    fn from_serializable_roundtrip() {
        #[derive(Serialize)]
        struct S {
            a: u32,
            b: String,
        }
        let e = Event::from_serializable(&S { a: 7, b: "x".into() }).unwrap();
        assert_eq!(e.metadata["a"], 7);
        assert_eq!(e.metadata["b"], "x");
    }

    #[test]
    fn wire_size_counts_both_parts() {
        let e = Event::new(json!({"k": "v"}), Bytes::from_static(b"12345"));
        // {"k":"v"} is 9 bytes + 5 payload
        assert_eq!(e.wire_size(), 14);
    }

    fn sample_record() -> LogEntry {
        LogEntry {
            time: Time(42),
            level: LogLevel::Info,
            source: LogSource::Client(ClientId(1)),
            message: String::from("hello \"quoted\" world"),
        }
    }

    #[test]
    fn wire_size_equals_rendered_json_length_for_both_forms() {
        let rec = sample_record();
        let rendered = serde_json::to_string(&rec).unwrap();
        let typed = Event::typed(rec.clone());
        assert_eq!(typed.wire_size(), rendered.len());
        let json = Event::meta_only(serde_json::to_value(&rec).unwrap());
        assert_eq!(json.wire_size(), rendered.len());
        // with a payload, both parts count
        let with_payload =
            Event::new(Metadata::from(ProvRecord::Log(rec)), Bytes::from_static(b"1234567"));
        assert_eq!(with_payload.wire_size(), rendered.len() + 7);
    }

    #[test]
    fn typed_and_json_metadata_compare_equal() {
        let rec = sample_record();
        let typed = Metadata::from(ProvRecord::Log(rec.clone()));
        let json = Metadata::Json(serde_json::to_value(&rec).unwrap());
        assert_eq!(typed, json);
        assert_eq!(typed, typed.to_value());
        assert_eq!(typed.as_record().unwrap().task_key(), None);
        assert!(json.as_json().is_some());
        // indexing typed metadata is Null, not a panic
        assert!(typed["message"].is_null());
        assert_eq!(json["time"], 42);
    }

    #[test]
    fn typed_metadata_clones_share_the_record() {
        let m = Metadata::from(ProvRecord::Log(sample_record()));
        let m2 = m.clone();
        let (a, b) = (m.as_record().unwrap(), m2.as_record().unwrap());
        assert!(Arc::ptr_eq(a, b), "clone must bump the refcount, not copy the record");
    }

    #[test]
    fn event_id_ordering_and_display() {
        let a = EventId { partition: 0, offset: 5 };
        let b = EventId { partition: 1, offset: 0 };
        assert!(a < b);
        assert_eq!(a.to_string(), "0:5");
    }
}
