//! SSG-analog group membership and fault detection.
//!
//! Mofka uses Mochi's SSG for group membership. The analog tracks members,
//! their heartbeats, and a monotonically increasing *view number* that bumps
//! on every membership change — enough for the WMS to detect dead workers
//! and for tests to inject failures.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use dtf_core::time::{Dur, Time};

/// Per-member state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemberState {
    pub joined: Time,
    pub last_heartbeat: Time,
}

/// Membership group with heartbeat-based fault detection.
#[derive(Debug)]
pub struct SsgGroup {
    name: String,
    timeout: Dur,
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    members: HashMap<String, MemberState>,
    view: u64,
}

impl SsgGroup {
    pub fn new(name: impl Into<String>, timeout: Dur) -> Self {
        assert!(timeout > Dur::ZERO);
        Self { name: name.into(), timeout, inner: RwLock::new(Inner::default()) }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a member. Re-joining refreshes the heartbeat and bumps the view.
    pub fn join(&self, member: impl Into<String>, now: Time) {
        let mut inner = self.inner.write();
        inner.members.insert(member.into(), MemberState { joined: now, last_heartbeat: now });
        inner.view += 1;
    }

    /// Remove a member voluntarily. Returns whether it was present.
    pub fn leave(&self, member: &str) -> bool {
        let mut inner = self.inner.write();
        let removed = inner.members.remove(member).is_some();
        if removed {
            inner.view += 1;
        }
        removed
    }

    /// Record a heartbeat. Unknown members are ignored (stale heartbeat
    /// after eviction).
    pub fn heartbeat(&self, member: &str, now: Time) {
        if let Some(m) = self.inner.write().members.get_mut(member) {
            m.last_heartbeat = m.last_heartbeat.max(now);
        }
    }

    /// Members whose last heartbeat is older than the timeout at `now`.
    pub fn suspects(&self, now: Time) -> Vec<String> {
        let inner = self.inner.read();
        let mut out: Vec<String> = inner
            .members
            .iter()
            .filter(|(_, m)| now.since(m.last_heartbeat) > self.timeout)
            .map(|(k, _)| k.clone())
            .collect();
        out.sort();
        out
    }

    /// Evict all suspects at `now`; returns the evicted member names.
    pub fn evict_suspects(&self, now: Time) -> Vec<String> {
        let suspects = self.suspects(now);
        if !suspects.is_empty() {
            let mut inner = self.inner.write();
            for s in &suspects {
                inner.members.remove(s);
            }
            inner.view += 1;
        }
        suspects
    }

    pub fn members(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().members.keys().cloned().collect();
        v.sort();
        v
    }

    pub fn contains(&self, member: &str) -> bool {
        self.inner.read().members.contains_key(member)
    }

    /// Monotone view number; changes exactly when membership changes.
    pub fn view(&self) -> u64 {
        self.inner.read().view
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grp() -> SsgGroup {
        SsgGroup::new("workers", Dur::from_secs_f64(1.0))
    }

    #[test]
    fn join_leave_membership() {
        let g = grp();
        g.join("w0", Time::ZERO);
        g.join("w1", Time::ZERO);
        assert_eq!(g.members(), vec!["w0", "w1"]);
        assert!(g.contains("w0"));
        assert!(g.leave("w0"));
        assert!(!g.leave("w0"));
        assert_eq!(g.members(), vec!["w1"]);
    }

    #[test]
    fn view_bumps_on_changes_only() {
        let g = grp();
        let v0 = g.view();
        g.join("w0", Time::ZERO);
        let v1 = g.view();
        assert!(v1 > v0);
        g.heartbeat("w0", Time::from_secs_f64(0.5));
        assert_eq!(g.view(), v1, "heartbeat is not a membership change");
        g.leave("w0");
        assert!(g.view() > v1);
    }

    #[test]
    fn fault_detection_flags_stale_members() {
        let g = grp();
        g.join("w0", Time::ZERO);
        g.join("w1", Time::ZERO);
        g.heartbeat("w0", Time::from_secs_f64(2.0));
        // at t=2.5: w1 last beat at 0 (stale beyond 1s), w0 at 2.0 (fresh)
        assert_eq!(g.suspects(Time::from_secs_f64(2.5)), vec!["w1"]);
        let evicted = g.evict_suspects(Time::from_secs_f64(2.5));
        assert_eq!(evicted, vec!["w1"]);
        assert_eq!(g.members(), vec!["w0"]);
    }

    #[test]
    fn heartbeat_never_moves_backwards() {
        let g = grp();
        g.join("w0", Time::from_secs_f64(5.0));
        g.heartbeat("w0", Time::from_secs_f64(1.0)); // stale heartbeat arrives late
        assert!(g.suspects(Time::from_secs_f64(5.5)).is_empty());
    }

    #[test]
    fn heartbeat_for_unknown_member_is_ignored() {
        let g = grp();
        g.heartbeat("ghost", Time::ZERO);
        assert!(g.members().is_empty());
    }

    #[test]
    fn evict_with_no_suspects_keeps_view() {
        let g = grp();
        g.join("w0", Time::ZERO);
        let v = g.view();
        assert!(g.evict_suspects(Time::from_secs_f64(0.5)).is_empty());
        assert_eq!(g.view(), v);
    }
}
