//! Topics and partitions.
//!
//! A topic is a set of append-only partitions. Event metadata lives inline
//! in the partition log; non-empty payloads are stored in the shared
//! [`Warabi`](crate::warabi::Warabi) blob store and referenced by id —
//! mirroring Mofka's composition of micro-services. Partition logs are
//! persistent: consumers may replay from offset zero at any time, which is
//! what lets the same consumer API serve both in-situ and post-hoc analysis
//! (paper §III-B).
//!
//! When the owning service is durable, every appended slot is also written
//! through to Yokan under `topic-log/<topic>/<partition>/<offset>` (the
//! payload stays in Warabi; the slot value carries the blob id), and
//! [`Topic::restore`] rebuilds partition logs from those keys on reopen.
//! Staged (stalled) slots are persisted at append time too — durability is
//! decided at append, visibility at unstall — so a crash while stalled
//! surfaces the staged events after recovery.

use bytes::Bytes;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use dtf_core::error::{DtfError, Result};

use crate::event::{Event, EventId, Metadata, StoredEvent};
use crate::warabi::{BlobId, Warabi};
use crate::yokan::Yokan;

/// Topic creation parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopicConfig {
    pub partitions: u32,
}

impl Default for TopicConfig {
    fn default() -> Self {
        Self { partitions: 4 }
    }
}

/// One stored record: inline metadata + optional payload reference. Typed
/// provenance metadata is held as-is (an `Arc` bump per append/read), so a
/// record pushed typed is never re-serialized while it sits in the log.
#[derive(Debug, Clone)]
struct Slot {
    metadata: Metadata,
    payload: Option<BlobId>,
}

/// A partition log plus its stall state. While stalled, appended events
/// are staged — durable but invisible to readers — and drain into the log
/// in arrival order when the stall lifts. Offsets are assigned at append
/// time (past the staged tail), so ids stay stable across the stall: a
/// stall delays visibility, it never loses, duplicates, or reorders.
#[derive(Debug, Default)]
struct PartitionState {
    slots: Vec<Slot>,
    staged: Vec<Slot>,
    stalled: bool,
}

#[derive(Debug, Default)]
struct Partition {
    state: RwLock<PartitionState>,
}

/// A named, partitioned, persistent event log.
#[derive(Debug)]
pub struct Topic {
    name: String,
    partitions: Vec<Partition>,
    warabi: Arc<Warabi>,
    /// When set, slots are written through to this Yokan under
    /// `topic-log/<name>/<partition>/<offset>` as they are appended.
    persist: Option<Arc<Yokan>>,
}

/// Yokan key of one persisted slot. Offsets are zero-padded so lexical
/// key order is numeric offset order (what `restore` walks).
fn slot_key(topic: &str, partition: u32, offset: u64) -> String {
    format!("topic-log/{topic}/{partition}/{offset:020}")
}

/// Slot value: `tag:u8 | blob_id:u64le | metadata bytes`.
///
/// The tag is self-describing (KV compaction re-appends raw slot values,
/// so the encoding cannot be inferred from the segment header): tags 0/1
/// carry metadata as JSON text (no blob / blob), the format of JSON-era
/// stores and of generic `Metadata::Json` events; tags 2/3 carry the
/// `dtf_core::binfmt` binary record encoding, written for every typed
/// provenance record. Decoding a binary slot yields `Metadata::Typed`
/// directly — restore and `open_archive` never materialize a
/// `serde_json::Value` for typed records.
const SLOT_JSON: u8 = 0;
const SLOT_JSON_BLOB: u8 = 1;
const SLOT_BINARY: u8 = 2;
const SLOT_BINARY_BLOB: u8 = 3;

fn encode_slot(slot: &Slot) -> Vec<u8> {
    let (meta, binary) = match slot.metadata.as_record() {
        Some(rec) => (rec.to_binary_bytes(), true),
        None => (
            serde_json::to_vec(&slot.metadata.to_value()).expect("value tree always renders"),
            false,
        ),
    };
    let mut v = Vec::with_capacity(9 + meta.len());
    v.push(match (binary, slot.payload.is_some()) {
        (false, false) => SLOT_JSON,
        (false, true) => SLOT_JSON_BLOB,
        (true, false) => SLOT_BINARY,
        (true, true) => SLOT_BINARY_BLOB,
    });
    v.extend_from_slice(&slot.payload.map_or(0u64, |b| b.0).to_le_bytes());
    v.extend_from_slice(&meta);
    v
}

fn decode_slot(value: &Bytes) -> Result<Slot> {
    if value.len() < 9 || value[0] > SLOT_BINARY_BLOB {
        return Err(DtfError::Io("malformed persisted slot".into()));
    }
    let has_blob = value[0] == SLOT_JSON_BLOB || value[0] == SLOT_BINARY_BLOB;
    let payload = has_blob.then(|| BlobId(u64::from_le_bytes(value[1..9].try_into().unwrap())));
    let metadata = if value[0] >= SLOT_BINARY {
        Metadata::Typed(Arc::new(dtf_core::events::ProvRecord::decode_binary(&value[9..])?))
    } else {
        Metadata::Json(serde_json::from_slice(&value[9..])?)
    };
    Ok(Slot { metadata, payload })
}

impl Topic {
    pub(crate) fn new(
        name: impl Into<String>,
        cfg: &TopicConfig,
        warabi: Arc<Warabi>,
        persist: Option<Arc<Yokan>>,
    ) -> Self {
        assert!(cfg.partitions >= 1, "a topic needs at least one partition");
        Self {
            name: name.into(),
            partitions: (0..cfg.partitions).map(|_| Partition::default()).collect(),
            warabi,
            persist,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_partitions(&self) -> u32 {
        self.partitions.len() as u32
    }

    fn partition(&self, p: u32) -> Result<&Partition> {
        self.partitions
            .get(p as usize)
            .ok_or_else(|| DtfError::NotFound(format!("partition {p} of topic {}", self.name)))
    }

    /// Append a batch of events to one partition; returns their ids.
    /// One lock acquisition per batch — this is the amortization producers'
    /// batching buys. A stalled partition stages the batch instead (ids are
    /// still assigned, past the staged tail).
    pub fn append_batch(&self, p: u32, events: Vec<Event>) -> Result<Vec<EventId>> {
        let part = self.partition(p)?;
        // store payloads outside the partition lock
        let slots: Vec<Slot> = events
            .into_iter()
            .map(|e| Slot {
                metadata: e.metadata,
                payload: if e.data.is_empty() { None } else { Some(self.warabi.put(e.data)) },
            })
            .collect();
        let mut state = part.state.write();
        let base = (state.slots.len() + state.staged.len()) as u64;
        let n = slots.len();
        // write-through while holding the partition lock, so persisted
        // offsets can never interleave with a concurrent batch
        if let Some(yokan) = &self.persist {
            for (i, slot) in slots.iter().enumerate() {
                yokan.put(slot_key(&self.name, p, base + i as u64), encode_slot(slot));
            }
        }
        if state.stalled {
            state.staged.extend(slots);
        } else {
            state.slots.extend(slots);
        }
        Ok((0..n).map(|i| EventId { partition: p, offset: base + i as u64 }).collect())
    }

    /// Rebuild partition logs from slots persisted in `yokan`. Each
    /// partition is restored up to the first offset gap or the first slot
    /// whose blob id is not in Warabi — the conservative committed prefix
    /// (blob logs are flushed before metadata on sync, so a recovered
    /// slot normally implies a recovered blob; a tear in the blob log
    /// truncates here instead). Returns events restored.
    pub(crate) fn restore(&self, yokan: &Yokan) -> Result<u64> {
        let mut total = 0u64;
        for p in 0..self.num_partitions() {
            let prefix = format!("topic-log/{}/{p}/", self.name);
            let entries = yokan.list_prefix(&prefix);
            let mut state = self.partitions[p as usize].state.write();
            for (i, (key, value)) in entries.iter().enumerate() {
                let offset: u64 = key[prefix.len()..]
                    .parse()
                    .map_err(|_| DtfError::Io(format!("bad slot key {key}")))?;
                if offset != i as u64 {
                    break; // offset gap: the committed prefix ends here
                }
                let slot = decode_slot(value)?;
                if let Some(b) = slot.payload {
                    // existence check only — on an archive this reads the
                    // segment map, not the payload, so restore stays
                    // metadata-bounded and blob bytes load on demand
                    if !self.warabi.contains(b) {
                        break; // dangling blob: truncate at the tear
                    }
                }
                state.slots.push(slot);
                total += 1;
            }
        }
        Ok(total)
    }

    /// Stall partition `p`: subsequent appends are staged, invisible to
    /// readers, until [`Self::unstall`]. Idempotent.
    pub fn stall(&self, p: u32) -> Result<()> {
        self.partition(p)?.state.write().stalled = true;
        Ok(())
    }

    /// Lift a stall on partition `p`, draining staged events into the log
    /// in arrival order. Idempotent (a no-op on an unstalled partition).
    pub fn unstall(&self, p: u32) -> Result<()> {
        let part = self.partition(p)?;
        let mut state = part.state.write();
        state.stalled = false;
        let staged = std::mem::take(&mut state.staged);
        state.slots.extend(staged);
        Ok(())
    }

    /// Lift stalls on every partition of this topic.
    pub fn unstall_all(&self) {
        for p in 0..self.num_partitions() {
            let _ = self.unstall(p);
        }
    }

    /// Events staged behind a stall on partition `p`.
    pub fn staged_len(&self, p: u32) -> Result<u64> {
        Ok(self.partition(p)?.state.read().staged.len() as u64)
    }

    /// Number of events currently visible in partition `p`.
    pub fn partition_len(&self, p: u32) -> Result<u64> {
        Ok(self.partition(p)?.state.read().slots.len() as u64)
    }

    /// Total visible events across all partitions.
    pub fn total_len(&self) -> u64 {
        self.partitions.iter().map(|p| p.state.read().slots.len() as u64).sum()
    }

    /// Read up to `max` events from partition `p` starting at `offset`.
    pub fn read(&self, p: u32, offset: u64, max: usize) -> Result<Vec<StoredEvent>> {
        let part = self.partition(p)?;
        // Copy the slot range out under the lock, then resolve payloads and
        // build the result unlocked: readers here can hold thousands of
        // slots, and keeping blob lookups inside the critical section
        // stalls appenders (and every reader queued behind them) for the
        // whole construction.
        let (start, slots) = {
            let state = part.state.read();
            let log = &state.slots;
            let start = (offset as usize).min(log.len());
            let end = start.saturating_add(max).min(log.len());
            (start, log[start..end].to_vec())
        };
        let mut out = Vec::with_capacity(slots.len());
        for (i, slot) in slots.iter().enumerate() {
            // a blob id with no blob means the slot references data that
            // did not survive (reachable after a durable reopen); surface
            // it as corruption instead of silently yielding empty bytes
            let data = match slot.payload {
                Some(b) => self.warabi.get(b).ok_or_else(|| {
                    DtfError::IllegalState(format!(
                        "dangling {b} at offset {} of topic {} partition {p}",
                        start + i,
                        self.name
                    ))
                })?,
                None => Bytes::new(),
            };
            out.push(StoredEvent {
                id: EventId { partition: p, offset: (start + i) as u64 },
                event: Event { metadata: slot.metadata.clone(), data },
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn topic(parts: u32) -> Topic {
        Topic::new("test", &TopicConfig { partitions: parts }, Arc::new(Warabi::new()), None)
    }

    #[test]
    fn append_assigns_sequential_offsets() {
        let t = topic(2);
        let ids = t
            .append_batch(0, vec![Event::meta_only(json!(1)), Event::meta_only(json!(2))])
            .unwrap();
        assert_eq!(
            ids,
            vec![EventId { partition: 0, offset: 0 }, EventId { partition: 0, offset: 1 }]
        );
        let ids2 = t.append_batch(0, vec![Event::meta_only(json!(3))]).unwrap();
        assert_eq!(ids2[0].offset, 2);
        assert_eq!(t.partition_len(0).unwrap(), 3);
        assert_eq!(t.partition_len(1).unwrap(), 0);
        assert_eq!(t.total_len(), 3);
    }

    #[test]
    fn read_returns_events_in_order_with_ids() {
        let t = topic(1);
        for i in 0..10 {
            t.append_batch(0, vec![Event::meta_only(json!({ "i": i }))]).unwrap();
        }
        let got = t.read(0, 3, 4).unwrap();
        assert_eq!(got.len(), 4);
        for (k, se) in got.iter().enumerate() {
            assert_eq!(se.id.offset, 3 + k as u64);
            assert_eq!(se.event.metadata["i"], 3 + k as u64);
        }
        // reading past end is empty, not an error
        assert!(t.read(0, 100, 5).unwrap().is_empty());
    }

    #[test]
    fn payloads_roundtrip_through_warabi() {
        let t = topic(1);
        t.append_batch(0, vec![Event::new(json!({"k": 1}), Bytes::from_static(b"payload"))])
            .unwrap();
        let got = t.read(0, 0, 1).unwrap();
        assert_eq!(got[0].event.data.as_ref(), b"payload");
    }

    #[test]
    fn unknown_partition_is_error() {
        let t = topic(2);
        assert!(t.append_batch(2, vec![]).is_err());
        assert!(t.read(5, 0, 1).is_err());
        assert!(t.partition_len(9).is_err());
    }

    #[test]
    fn stalled_partition_stages_and_drains_in_order() {
        let t = topic(2);
        t.append_batch(0, vec![Event::meta_only(json!(0))]).unwrap();
        t.stall(0).unwrap();
        let ids = t
            .append_batch(0, vec![Event::meta_only(json!(1)), Event::meta_only(json!(2))])
            .unwrap();
        // ids assigned past the staged tail, but nothing visible yet
        assert_eq!(ids[0].offset, 1);
        assert_eq!(ids[1].offset, 2);
        assert_eq!(t.partition_len(0).unwrap(), 1);
        assert_eq!(t.staged_len(0).unwrap(), 2);
        // other partitions unaffected
        t.append_batch(1, vec![Event::meta_only(json!(9))]).unwrap();
        assert_eq!(t.partition_len(1).unwrap(), 1);
        // reads see only the visible prefix
        assert_eq!(t.read(0, 0, 10).unwrap().len(), 1);
        t.unstall(0).unwrap();
        assert_eq!(t.staged_len(0).unwrap(), 0);
        let got = t.read(0, 0, 10).unwrap();
        assert_eq!(got.len(), 3);
        for (i, se) in got.iter().enumerate() {
            assert_eq!(se.id.offset, i as u64, "order preserved across the stall");
            assert_eq!(se.event.metadata, json!(i));
        }
        // idempotent
        t.unstall(0).unwrap();
        t.unstall_all();
        assert_eq!(t.total_len(), 4);
    }

    #[test]
    fn slots_persist_and_restore_including_staged() {
        let yokan = Arc::new(Yokan::new());
        let warabi = Arc::new(Warabi::new());
        let cfg = TopicConfig { partitions: 2 };
        let t = Topic::new("t", &cfg, warabi.clone(), Some(yokan.clone()));
        t.append_batch(0, vec![Event::new(json!({"k": 0}), Bytes::from_static(b"blob"))]).unwrap();
        t.append_batch(1, vec![Event::meta_only(json!({"k": 1}))]).unwrap();
        t.stall(0).unwrap();
        t.append_batch(0, vec![Event::meta_only(json!({"k": 2}))]).unwrap();
        // durability is decided at append: the staged slot is persisted
        let t2 = Topic::new("t", &cfg, warabi.clone(), None);
        assert_eq!(t2.restore(&yokan).unwrap(), 3);
        let p0 = t2.read(0, 0, 10).unwrap();
        assert_eq!(p0.len(), 2, "the staged event surfaces after restore");
        assert_eq!(p0[0].event.data.as_ref(), b"blob");
        assert_eq!(p0[0].event.metadata["k"], 0u64);
        assert_eq!(p0[1].event.metadata["k"], 2u64);
        assert_eq!(t2.read(1, 0, 10).unwrap()[0].event.metadata["k"], 1u64);
    }

    #[test]
    fn restore_truncates_at_offset_gap_and_dangling_blob() {
        let yokan = Arc::new(Yokan::new());
        let warabi = Arc::new(Warabi::new());
        let cfg = TopicConfig { partitions: 1 };
        let t = Topic::new("t", &cfg, warabi.clone(), Some(yokan.clone()));
        for i in 0..5 {
            t.append_batch(0, vec![Event::meta_only(json!(i))]).unwrap();
        }
        // a gap at offset 2 ends the committed prefix there
        yokan.delete(&slot_key("t", 0, 2));
        let t2 = Topic::new("t", &cfg, warabi.clone(), None);
        assert_eq!(t2.restore(&yokan).unwrap(), 2);
        // a slot whose blob never made it to warabi truncates the prefix
        let yokan2 = Arc::new(Yokan::new());
        let dangling = Slot { metadata: Metadata::Json(json!(9)), payload: Some(BlobId(99)) };
        yokan2.put(slot_key("t", 0, 0), encode_slot(&dangling));
        let t3 = Topic::new("t", &cfg, Arc::new(Warabi::new()), None);
        assert_eq!(t3.restore(&yokan2).unwrap(), 0);
    }

    #[test]
    fn dangling_blob_read_is_an_error_not_empty_bytes() {
        let t = topic(1);
        t.partitions[0]
            .state
            .write()
            .slots
            .push(Slot { metadata: Metadata::Json(json!(1)), payload: Some(BlobId(7)) });
        match t.read(0, 0, 1) {
            Err(DtfError::IllegalState(msg)) => assert!(msg.contains("blob-7")),
            other => panic!("expected IllegalState, got {other:?}"),
        }
    }

    #[test]
    fn typed_slots_restore_typed_without_a_json_round_trip() {
        use dtf_core::events::{LogEntry, LogLevel, LogSource, ProvRecord};
        use dtf_core::time::Time;
        let yokan = Arc::new(Yokan::new());
        let warabi = Arc::new(Warabi::new());
        let cfg = TopicConfig { partitions: 1 };
        let t = Topic::new("t", &cfg, warabi.clone(), Some(yokan.clone()));
        let rec = ProvRecord::Log(LogEntry {
            time: Time(42),
            level: LogLevel::Info,
            source: LogSource::Scheduler,
            message: "typed slot".into(),
        });
        t.append_batch(0, vec![Event::typed(rec.clone())]).unwrap();
        t.append_batch(0, vec![Event::meta_only(json!({"generic": true}))]).unwrap();

        // on disk: the typed slot is binary-tagged, the generic one JSON
        let raw = yokan.list_prefix("topic-log/t/0/");
        assert_eq!(raw[0].1[0], SLOT_BINARY);
        assert_eq!(raw[1].1[0], SLOT_JSON);

        let t2 = Topic::new("t", &cfg, warabi, None);
        assert_eq!(t2.restore(&yokan).unwrap(), 2);
        let got = t2.read(0, 0, 10).unwrap();
        match &got[0].event.metadata {
            Metadata::Typed(back) => assert_eq!(**back, rec),
            other => panic!("binary slot must restore typed, got {other:?}"),
        }
        match &got[1].event.metadata {
            Metadata::Json(v) => assert_eq!(v["generic"], true),
            other => panic!("generic slot must restore as JSON, got {other:?}"),
        }
        // the export boundary is unchanged either way
        assert_eq!(got[0].event.metadata.to_value(), rec.to_value());
    }

    #[test]
    fn concurrent_appends_preserve_all_events() {
        let t = Arc::new(topic(4));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for j in 0..250 {
                        t.append_batch(i % 4, vec![Event::meta_only(json!({ "t": i, "j": j }))])
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.total_len(), 2000);
        // every partition got the appends of its two writer threads
        for p in 0..4 {
            assert_eq!(t.partition_len(p).unwrap(), 500);
        }
    }
}
