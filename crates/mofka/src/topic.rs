//! Topics and partitions.
//!
//! A topic is a set of append-only partitions. Event metadata lives inline
//! in the partition log; non-empty payloads are stored in the shared
//! [`Warabi`](crate::warabi::Warabi) blob store and referenced by id —
//! mirroring Mofka's composition of micro-services. Partition logs are
//! persistent: consumers may replay from offset zero at any time, which is
//! what lets the same consumer API serve both in-situ and post-hoc analysis
//! (paper §III-B).

use bytes::Bytes;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use dtf_core::error::{DtfError, Result};

use crate::event::{Event, EventId, Metadata, StoredEvent};
use crate::warabi::{BlobId, Warabi};

/// Topic creation parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopicConfig {
    pub partitions: u32,
}

impl Default for TopicConfig {
    fn default() -> Self {
        Self { partitions: 4 }
    }
}

/// One stored record: inline metadata + optional payload reference. Typed
/// provenance metadata is held as-is (an `Arc` bump per append/read), so a
/// record pushed typed is never re-serialized while it sits in the log.
#[derive(Debug, Clone)]
struct Slot {
    metadata: Metadata,
    payload: Option<BlobId>,
}

/// A partition log plus its stall state. While stalled, appended events
/// are staged — durable but invisible to readers — and drain into the log
/// in arrival order when the stall lifts. Offsets are assigned at append
/// time (past the staged tail), so ids stay stable across the stall: a
/// stall delays visibility, it never loses, duplicates, or reorders.
#[derive(Debug, Default)]
struct PartitionState {
    slots: Vec<Slot>,
    staged: Vec<Slot>,
    stalled: bool,
}

#[derive(Debug, Default)]
struct Partition {
    state: RwLock<PartitionState>,
}

/// A named, partitioned, persistent event log.
#[derive(Debug)]
pub struct Topic {
    name: String,
    partitions: Vec<Partition>,
    warabi: Arc<Warabi>,
}

impl Topic {
    pub(crate) fn new(name: impl Into<String>, cfg: &TopicConfig, warabi: Arc<Warabi>) -> Self {
        assert!(cfg.partitions >= 1, "a topic needs at least one partition");
        Self {
            name: name.into(),
            partitions: (0..cfg.partitions).map(|_| Partition::default()).collect(),
            warabi,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_partitions(&self) -> u32 {
        self.partitions.len() as u32
    }

    fn partition(&self, p: u32) -> Result<&Partition> {
        self.partitions
            .get(p as usize)
            .ok_or_else(|| DtfError::NotFound(format!("partition {p} of topic {}", self.name)))
    }

    /// Append a batch of events to one partition; returns their ids.
    /// One lock acquisition per batch — this is the amortization producers'
    /// batching buys. A stalled partition stages the batch instead (ids are
    /// still assigned, past the staged tail).
    pub fn append_batch(&self, p: u32, events: Vec<Event>) -> Result<Vec<EventId>> {
        let part = self.partition(p)?;
        // store payloads outside the partition lock
        let slots: Vec<Slot> = events
            .into_iter()
            .map(|e| Slot {
                metadata: e.metadata,
                payload: if e.data.is_empty() { None } else { Some(self.warabi.put(e.data)) },
            })
            .collect();
        let mut state = part.state.write();
        let base = (state.slots.len() + state.staged.len()) as u64;
        let n = slots.len();
        if state.stalled {
            state.staged.extend(slots);
        } else {
            state.slots.extend(slots);
        }
        Ok((0..n).map(|i| EventId { partition: p, offset: base + i as u64 }).collect())
    }

    /// Stall partition `p`: subsequent appends are staged, invisible to
    /// readers, until [`Self::unstall`]. Idempotent.
    pub fn stall(&self, p: u32) -> Result<()> {
        self.partition(p)?.state.write().stalled = true;
        Ok(())
    }

    /// Lift a stall on partition `p`, draining staged events into the log
    /// in arrival order. Idempotent (a no-op on an unstalled partition).
    pub fn unstall(&self, p: u32) -> Result<()> {
        let part = self.partition(p)?;
        let mut state = part.state.write();
        state.stalled = false;
        let staged = std::mem::take(&mut state.staged);
        state.slots.extend(staged);
        Ok(())
    }

    /// Lift stalls on every partition of this topic.
    pub fn unstall_all(&self) {
        for p in 0..self.num_partitions() {
            let _ = self.unstall(p);
        }
    }

    /// Events staged behind a stall on partition `p`.
    pub fn staged_len(&self, p: u32) -> Result<u64> {
        Ok(self.partition(p)?.state.read().staged.len() as u64)
    }

    /// Number of events currently visible in partition `p`.
    pub fn partition_len(&self, p: u32) -> Result<u64> {
        Ok(self.partition(p)?.state.read().slots.len() as u64)
    }

    /// Total visible events across all partitions.
    pub fn total_len(&self) -> u64 {
        self.partitions.iter().map(|p| p.state.read().slots.len() as u64).sum()
    }

    /// Read up to `max` events from partition `p` starting at `offset`.
    pub fn read(&self, p: u32, offset: u64, max: usize) -> Result<Vec<StoredEvent>> {
        let part = self.partition(p)?;
        let state = part.state.read();
        let log = &state.slots;
        let start = (offset as usize).min(log.len());
        let end = start.saturating_add(max).min(log.len());
        Ok(log[start..end]
            .iter()
            .enumerate()
            .map(|(i, slot)| StoredEvent {
                id: EventId { partition: p, offset: (start + i) as u64 },
                event: Event {
                    metadata: slot.metadata.clone(),
                    data: slot.payload.and_then(|b| self.warabi.get(b)).unwrap_or_else(Bytes::new),
                },
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn topic(parts: u32) -> Topic {
        Topic::new("test", &TopicConfig { partitions: parts }, Arc::new(Warabi::new()))
    }

    #[test]
    fn append_assigns_sequential_offsets() {
        let t = topic(2);
        let ids = t
            .append_batch(0, vec![Event::meta_only(json!(1)), Event::meta_only(json!(2))])
            .unwrap();
        assert_eq!(
            ids,
            vec![EventId { partition: 0, offset: 0 }, EventId { partition: 0, offset: 1 }]
        );
        let ids2 = t.append_batch(0, vec![Event::meta_only(json!(3))]).unwrap();
        assert_eq!(ids2[0].offset, 2);
        assert_eq!(t.partition_len(0).unwrap(), 3);
        assert_eq!(t.partition_len(1).unwrap(), 0);
        assert_eq!(t.total_len(), 3);
    }

    #[test]
    fn read_returns_events_in_order_with_ids() {
        let t = topic(1);
        for i in 0..10 {
            t.append_batch(0, vec![Event::meta_only(json!({ "i": i }))]).unwrap();
        }
        let got = t.read(0, 3, 4).unwrap();
        assert_eq!(got.len(), 4);
        for (k, se) in got.iter().enumerate() {
            assert_eq!(se.id.offset, 3 + k as u64);
            assert_eq!(se.event.metadata["i"], 3 + k as u64);
        }
        // reading past end is empty, not an error
        assert!(t.read(0, 100, 5).unwrap().is_empty());
    }

    #[test]
    fn payloads_roundtrip_through_warabi() {
        let t = topic(1);
        t.append_batch(0, vec![Event::new(json!({"k": 1}), Bytes::from_static(b"payload"))])
            .unwrap();
        let got = t.read(0, 0, 1).unwrap();
        assert_eq!(got[0].event.data.as_ref(), b"payload");
    }

    #[test]
    fn unknown_partition_is_error() {
        let t = topic(2);
        assert!(t.append_batch(2, vec![]).is_err());
        assert!(t.read(5, 0, 1).is_err());
        assert!(t.partition_len(9).is_err());
    }

    #[test]
    fn stalled_partition_stages_and_drains_in_order() {
        let t = topic(2);
        t.append_batch(0, vec![Event::meta_only(json!(0))]).unwrap();
        t.stall(0).unwrap();
        let ids = t
            .append_batch(0, vec![Event::meta_only(json!(1)), Event::meta_only(json!(2))])
            .unwrap();
        // ids assigned past the staged tail, but nothing visible yet
        assert_eq!(ids[0].offset, 1);
        assert_eq!(ids[1].offset, 2);
        assert_eq!(t.partition_len(0).unwrap(), 1);
        assert_eq!(t.staged_len(0).unwrap(), 2);
        // other partitions unaffected
        t.append_batch(1, vec![Event::meta_only(json!(9))]).unwrap();
        assert_eq!(t.partition_len(1).unwrap(), 1);
        // reads see only the visible prefix
        assert_eq!(t.read(0, 0, 10).unwrap().len(), 1);
        t.unstall(0).unwrap();
        assert_eq!(t.staged_len(0).unwrap(), 0);
        let got = t.read(0, 0, 10).unwrap();
        assert_eq!(got.len(), 3);
        for (i, se) in got.iter().enumerate() {
            assert_eq!(se.id.offset, i as u64, "order preserved across the stall");
            assert_eq!(se.event.metadata, json!(i));
        }
        // idempotent
        t.unstall(0).unwrap();
        t.unstall_all();
        assert_eq!(t.total_len(), 4);
    }

    #[test]
    fn concurrent_appends_preserve_all_events() {
        let t = Arc::new(topic(4));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for j in 0..250 {
                        t.append_batch(i % 4, vec![Event::meta_only(json!({ "t": i, "j": j }))])
                            .unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.total_len(), 2000);
        // every partition got the appends of its two writer threads
        for p in 0..4 {
            assert_eq!(t.partition_len(p).unwrap(), 500);
        }
    }
}
