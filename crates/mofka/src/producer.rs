//! Producers: batched, partitioned event injection.
//!
//! Producers buffer events locally and append them to partitions in
//! batches, amortizing synchronization — Mofka's "batching strategies"
//! (§III-B). Partition selection is either round-robin or by hashing a
//! metadata key field, which keeps all events of one task in one partition
//! (preserving per-task ordering for consumers).
//!
//! On a real-time service (see [`crate::shard`]) a producer's `flush`
//! hands each partition batch to the owning shard's queue instead of
//! appending under the partition lock itself — concurrent producers
//! stop contending there. Handed-off batches complete asynchronously;
//! [`Producer::sync`] flushes *and* waits (a plane barrier), which is
//! also where deferred append errors surface. On a virtual-time service
//! there is no plane and `flush` appends synchronously, exactly as
//! before — the deterministic path.

use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::Hasher;
use std::sync::Arc;

use dtf_core::error::Result;

use crate::event::{Event, Metadata};
use crate::shard::DataPlane;
use crate::topic::Topic;

/// How a producer assigns events to partitions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Cycle through partitions.
    RoundRobin,
    /// Hash the given metadata field's JSON rendering; events with equal
    /// key values land in the same partition, preserving their relative
    /// order. The rendering is streamed straight into the hasher — no
    /// string is materialized. Events *without* the field (e.g. warnings
    /// and logs, which are not task-scoped) all go to
    /// [`MISSING_KEY_PARTITION`].
    HashKey(String),
}

/// Where `HashKey` routes events whose metadata lacks the key field. One
/// fixed partition keeps all key-less events of a topic mutually ordered,
/// which is all the routing contract promises for them.
pub const MISSING_KEY_PARTITION: u32 = 0;

/// Streams `fmt::Write` output into a `Hasher` without materializing a
/// string. `DefaultHasher` buffers its input stream internally, so chunked
/// writes hash identically to one contiguous `write` of the same bytes
/// (pinned by `hash_key_matches_stringified_hash` below).
struct HashWriter<'a, H: Hasher>(&'a mut H);

impl<H: Hasher> fmt::Write for HashWriter<'_, H> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0.write(s.as_bytes());
        Ok(())
    }
}

/// Producer tuning parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProducerConfig {
    /// Flush when this many events are buffered. 1 disables batching.
    pub batch_size: usize,
    pub strategy: PartitionStrategy,
}

impl Default for ProducerConfig {
    fn default() -> Self {
        Self { batch_size: 64, strategy: PartitionStrategy::RoundRobin }
    }
}

/// Producer-side statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProducerStats {
    pub events: u64,
    pub batches: u64,
    pub bytes: u64,
}

/// A producer handle bound to one topic. Not `Sync`: each producing thread
/// owns its producer (Mofka's nonblocking client model); the topic itself
/// is thread-safe.
#[derive(Debug)]
pub struct Producer {
    topic: Arc<Topic>,
    cfg: ProducerConfig,
    /// Per-partition pending buffers.
    pending: Vec<Vec<Event>>,
    pending_count: usize,
    rr_next: u32,
    stats: ProducerStats,
    /// Concurrent data plane; `None` appends synchronously (virtual time).
    plane: Option<Arc<DataPlane>>,
}

impl Producer {
    /// A synchronous (plane-less) producer — the virtual-time path.
    #[cfg(test)]
    pub(crate) fn new(topic: Arc<Topic>, cfg: ProducerConfig) -> Self {
        Self::with_plane(topic, cfg, None)
    }

    pub(crate) fn with_plane(
        topic: Arc<Topic>,
        cfg: ProducerConfig,
        plane: Option<Arc<DataPlane>>,
    ) -> Self {
        assert!(cfg.batch_size >= 1, "batch_size must be >= 1");
        let parts = topic.num_partitions() as usize;
        Self {
            topic,
            cfg,
            pending: (0..parts).map(|_| Vec::new()).collect(),
            pending_count: 0,
            rr_next: 0,
            stats: ProducerStats::default(),
            plane,
        }
    }

    fn select_partition(&mut self, event: &Event) -> u32 {
        match &self.cfg.strategy {
            PartitionStrategy::RoundRobin => {
                let p = self.rr_next;
                self.rr_next = (self.rr_next + 1) % self.topic.num_partitions();
                p
            }
            PartitionStrategy::HashKey(field) => {
                let mut h = DefaultHasher::new();
                let hashed = {
                    let mut w = HashWriter(&mut h);
                    match &event.metadata {
                        Metadata::Json(v) => match v.get(field) {
                            Some(val) => {
                                serde_json::write_value_to(val, &mut w)
                                    .expect("hash sink is infallible");
                                true
                            }
                            None => false,
                        },
                        // Typed provenance records route on their task key;
                        // streaming its JSON form keeps the assignment
                        // byte-compatible with hashing the rendered field.
                        Metadata::Typed(rec) => match rec.task_key() {
                            Some(key) => {
                                key.write_json(&mut w).expect("hash sink is infallible");
                                true
                            }
                            None => false,
                        },
                    }
                };
                if !hashed {
                    return MISSING_KEY_PARTITION;
                }
                // `str::hash` terminator, kept for parity with the historic
                // stringify-then-hash assignment (same hash, same partition)
                h.write_u8(0xff);
                (h.finish() % self.topic.num_partitions() as u64) as u32
            }
        }
    }

    /// Buffer one event; flushes automatically when the batch fills.
    pub fn push(&mut self, event: Event) -> Result<()> {
        self.stats.events += 1;
        self.stats.bytes += event.wire_size() as u64;
        let p = self.select_partition(&event);
        self.pending[p as usize].push(event);
        self.pending_count += 1;
        if self.pending_count >= self.cfg.batch_size {
            self.flush()?;
        }
        Ok(())
    }

    /// Append all buffered events to their partitions. With a data plane
    /// this hands each batch to the owning shard and returns as soon as
    /// every batch is *queued* (nonblocking, like Mofka's client); the
    /// appends themselves complete asynchronously in handoff order. Call
    /// [`Producer::sync`] (or the service's `sync`) to wait for them.
    pub fn flush(&mut self) -> Result<()> {
        for (p, buf) in self.pending.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let batch = std::mem::take(buf);
            match &self.plane {
                Some(plane) => plane.enqueue_append(&self.topic, p as u32, batch)?,
                None => {
                    self.topic.append_batch(p as u32, batch)?;
                }
            }
            self.stats.batches += 1;
        }
        self.pending_count = 0;
        Ok(())
    }

    /// Flush, then wait until every batch this producer (and any other
    /// client of the same plane) handed off has been appended. Deferred
    /// shard append errors surface here. On a virtual-time service this
    /// is just `flush` — appends there are already synchronous.
    pub fn sync(&mut self) -> Result<()> {
        self.flush()?;
        match &self.plane {
            Some(plane) => plane.barrier(),
            None => Ok(()),
        }
    }

    pub fn stats(&self) -> ProducerStats {
        self.stats
    }

    pub fn pending_events(&self) -> usize {
        self.pending_count
    }
}

impl Drop for Producer {
    fn drop(&mut self) {
        // best-effort flush so dropped producers do not lose events
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::TopicConfig;
    use crate::warabi::Warabi;
    use serde_json::json;

    fn topic(parts: u32) -> Arc<Topic> {
        Arc::new(Topic::new("t", &TopicConfig { partitions: parts }, Arc::new(Warabi::new()), None))
    }

    #[test]
    fn batching_defers_appends_until_batch_full() {
        let t = topic(1);
        let mut p = Producer::new(
            t.clone(),
            ProducerConfig { batch_size: 4, strategy: PartitionStrategy::RoundRobin },
        );
        for i in 0..3 {
            p.push(Event::meta_only(json!(i))).unwrap();
        }
        assert_eq!(t.total_len(), 0, "nothing flushed yet");
        assert_eq!(p.pending_events(), 3);
        p.push(Event::meta_only(json!(3))).unwrap();
        assert_eq!(t.total_len(), 4, "batch flushed at threshold");
        assert_eq!(p.pending_events(), 0);
        assert_eq!(p.stats().batches, 1);
        assert_eq!(p.stats().events, 4);
    }

    #[test]
    fn explicit_flush_drains_partial_batch() {
        let t = topic(1);
        let mut p = Producer::new(t.clone(), ProducerConfig::default());
        p.push(Event::meta_only(json!(1))).unwrap();
        p.flush().unwrap();
        assert_eq!(t.total_len(), 1);
    }

    #[test]
    fn drop_flushes_pending() {
        let t = topic(1);
        {
            let mut p = Producer::new(t.clone(), ProducerConfig::default());
            p.push(Event::meta_only(json!(1))).unwrap();
        }
        assert_eq!(t.total_len(), 1);
    }

    #[test]
    fn round_robin_spreads_events() {
        let t = topic(4);
        let mut p = Producer::new(
            t.clone(),
            ProducerConfig { batch_size: 1, strategy: PartitionStrategy::RoundRobin },
        );
        for i in 0..8 {
            p.push(Event::meta_only(json!(i))).unwrap();
        }
        for part in 0..4 {
            assert_eq!(t.partition_len(part).unwrap(), 2);
        }
    }

    #[test]
    fn hash_key_keeps_same_key_in_same_partition() {
        let t = topic(4);
        let mut p = Producer::new(
            t.clone(),
            ProducerConfig { batch_size: 1, strategy: PartitionStrategy::HashKey("task".into()) },
        );
        for i in 0..20 {
            p.push(Event::meta_only(json!({ "task": "A", "i": i }))).unwrap();
            p.push(Event::meta_only(json!({ "task": "B", "i": i }))).unwrap();
        }
        // each key's events all in exactly one partition
        let mut parts_a = vec![];
        for part in 0..4 {
            let evs = t.read(part, 0, 1000).unwrap();
            let a: Vec<_> = evs.iter().filter(|e| e.event.metadata["task"] == "A").collect();
            if !a.is_empty() {
                parts_a.push(part);
                // and in order
                let idx: Vec<u64> =
                    a.iter().map(|e| e.event.metadata["i"].as_u64().unwrap()).collect();
                assert!(idx.windows(2).all(|w| w[0] < w[1]), "per-key order preserved");
            }
        }
        assert_eq!(parts_a.len(), 1, "key A must map to exactly one partition");
    }

    /// The historic assignment: stringify the field, hash the `String`.
    /// The streaming path must reproduce it exactly — a changed assignment
    /// would reorder equal-time events at drain time and break the
    /// byte-identity gate on exported artifacts.
    fn legacy_partition(meta: &serde_json::Value, field: &str, parts: u64) -> u32 {
        use std::hash::Hash;
        let keystr = meta.get(field).map(|v| v.to_string()).unwrap_or_default();
        let mut h = DefaultHasher::new();
        keystr.hash(&mut h);
        (h.finish() % parts) as u32
    }

    #[test]
    fn hash_key_matches_stringified_hash() {
        let t = topic(7);
        let mut p = Producer::new(
            t.clone(),
            ProducerConfig { batch_size: 1, strategy: PartitionStrategy::HashKey("key".into()) },
        );
        let metas = [
            json!({"key": "task-a", "i": 0}),
            json!({"key": "task-b", "i": 1}),
            json!({"key": {"index":3,"prefix":"inc","token":12}, "i": 2}),
            json!({"key": 42, "i": 3}),
            json!({"key": "", "i": 4}),
            json!({"key": "päth \"q\"\n", "i": 5}),
        ];
        for m in &metas {
            let got = p.select_partition(&Event::meta_only(m.clone()));
            assert_eq!(got, legacy_partition(m, "key", 7), "diverged for {m}");
        }
    }

    #[test]
    fn typed_and_json_forms_of_a_record_share_a_partition() {
        use dtf_core::events::{Location, Stimulus, TaskState};
        use dtf_core::events::{TaskMetaEvent, TransitionEvent};
        use dtf_core::ids::{ClientId, GraphId, TaskKey};
        use dtf_core::time::Time;

        let t = topic(5);
        let mut p = Producer::new(
            t.clone(),
            ProducerConfig { batch_size: 1, strategy: PartitionStrategy::HashKey("key".into()) },
        );
        for token in 0..32u32 {
            let key = TaskKey::new("double", token, token * 3);
            let meta = TaskMetaEvent {
                key: key.clone(),
                graph: GraphId(1),
                client: ClientId(0),
                deps: vec![],
                submitted: Time(token as u64),
            };
            let tr = TransitionEvent {
                key,
                graph: GraphId(1),
                from: TaskState::Released,
                to: TaskState::Waiting,
                stimulus: Stimulus::GraphSubmitted,
                location: Location::Scheduler,
                time: Time(token as u64),
            };
            let typed_meta = p.select_partition(&Event::typed(meta.clone()));
            let typed_tr = p.select_partition(&Event::typed(tr.clone()));
            let json_meta =
                p.select_partition(&Event::meta_only(serde_json::to_value(&meta).unwrap()));
            assert_eq!(typed_meta, typed_tr, "same key must co-locate across families");
            assert_eq!(typed_meta, json_meta, "typed and JSON forms must co-locate");
        }
    }

    #[test]
    fn missing_key_routes_to_documented_partition() {
        use dtf_core::events::{WarningEvent, WarningKind};
        use dtf_core::time::{Dur, Time};

        let t = topic(4);
        let mut p = Producer::new(
            t.clone(),
            ProducerConfig { batch_size: 1, strategy: PartitionStrategy::HashKey("key".into()) },
        );
        // generic JSON without the field
        let json_part = p.select_partition(&Event::meta_only(json!({"other": 1})));
        assert_eq!(json_part, MISSING_KEY_PARTITION);
        // typed record with no task key (warnings are not task-scoped)
        let warn = WarningEvent {
            kind: WarningKind::GcPause,
            worker: None,
            time: Time(1),
            duration: Dur(2),
        };
        assert_eq!(p.select_partition(&Event::typed(warn)), MISSING_KEY_PARTITION);
    }

    #[test]
    fn plane_flush_is_queued_until_barrier() {
        let t = topic(2);
        let plane = DataPlane::manual(2);
        let mut p = Producer::with_plane(
            t.clone(),
            ProducerConfig { batch_size: 4, strategy: PartitionStrategy::RoundRobin },
            Some(plane.clone()),
        );
        for i in 0..8 {
            p.push(Event::meta_only(json!(i))).unwrap();
        }
        assert_eq!(t.total_len(), 0, "batches queued on shards, not yet applied");
        p.sync().unwrap();
        assert_eq!(t.total_len(), 8, "barrier applied every handed-off batch");
        assert_eq!(p.stats().batches, 4, "two auto-flushes x two partitions");
    }

    #[test]
    fn stats_count_bytes() {
        let t = topic(1);
        let mut p = Producer::new(t, ProducerConfig::default());
        p.push(Event::meta_only(json!({ "k": "v" }))).unwrap();
        assert!(p.stats().bytes >= 9);
    }
}
