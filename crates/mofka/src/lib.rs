//! # dtf-mofka
//!
//! An event-streaming service analogous to Mofka (paper §III-B): a
//! Kafka-like model optimized for ingesting large volumes of small, highly
//! concurrent events from instrumented workflows.
//!
//! * Events carry a JSON *metadata* part and a raw *data* payload (§III-B).
//! * Producers push into **topics**, batched to amortize synchronization;
//!   consumers in **consumer groups** pull with prefetch, each group seeing
//!   every event exactly once, in per-partition order.
//! * Event streams are persistent: the same consumer API serves in-situ
//!   analysis (tail the stream during the run) and post-processing (replay
//!   from offset zero after the run).
//!
//! Like Mofka, the service is assembled from reusable micro-services:
//! [`yokan`] (key/value), [`warabi`] (blob store), [`bedrock`] (deployment
//! and bootstrapping), and [`ssg`] (group membership and fault detection).
//! The topic log is itself stored in a Warabi blob region with its metadata
//! in Yokan, mirroring Mofka's composition.
//!
//! Two data planes serve producers ([`ServiceMode`]): the default
//! *virtual-time* plane appends synchronously and deterministically (the
//! simulation path), while the *real-time* plane ([`shard`]) gives each
//! partition an owning shard worker so hundreds of concurrent clients
//! scale past the single-lock ceiling — service mode and the stress
//! bench only, never simulated runs.

pub mod bedrock;
pub mod consumer;
pub mod event;
pub mod feed;
pub mod producer;
pub mod service;
pub mod shard;
pub mod ssg;
pub mod topic;
pub mod warabi;
pub mod yokan;

pub use consumer::{Consumer, ConsumerConfig, DiscardedClaims};
pub use event::{Event, EventId, Metadata, StoredEvent};
pub use feed::{FeedBatch, GroupFeed};
pub use producer::{Producer, ProducerConfig};
pub use service::{MofkaService, ServiceConfig, ServiceMode, ServiceRecovery};
pub use shard::{Activity, DataPlane};
pub use topic::TopicConfig;
