//! Multi-topic consumer-group feeds — the subscription plumbing the live
//! analysis engine sits on.
//!
//! A [`GroupFeed`] bundles one consumer per topic under a single consumer
//! group and exposes one nonblocking [`GroupFeed::poll`] across all of
//! them, so a subscriber ingests "whatever arrived since last time" in one
//! call. On a real-time service the feed also holds the shard plane's
//! [`Activity`] signal: [`GroupFeed::wait_activity`] sleeps until a shard
//! worker applies a new append batch (or a timeout elapses) instead of
//! spinning on empty claims — many concurrent feeds can park on the same
//! condvar without ever touching the ingest path. Virtual-time services
//! have no plane (and no concurrent appends); there `wait_activity`
//! returns immediately and callers drive the feed synchronously, which is
//! what keeps simulated runs deterministic.

use std::sync::Arc;

use dtf_core::error::Result;

use crate::consumer::{Consumer, ConsumerConfig};
use crate::event::StoredEvent;
use crate::service::MofkaService;
use crate::shard::Activity;

/// One batch of events pulled from one topic of the feed.
#[derive(Debug)]
pub struct FeedBatch {
    /// Index into the topic list the feed was built with.
    pub topic: usize,
    pub events: Vec<StoredEvent>,
}

/// A consumer group spanning several topics, polled as one stream.
#[derive(Debug)]
pub struct GroupFeed {
    topics: Vec<String>,
    consumers: Vec<Consumer>,
    /// Shard-plane append signal (real-time services only).
    activity: Option<Arc<Activity>>,
    /// Last activity sequence this feed acted on.
    seen: u64,
}

impl GroupFeed {
    pub(crate) fn new(
        svc: &MofkaService,
        topics: &[&str],
        cfg: ConsumerConfig,
        pipeline_depth: Option<usize>,
    ) -> Result<Self> {
        let mut consumers = Vec::with_capacity(topics.len());
        for t in topics {
            consumers.push(match pipeline_depth {
                Some(depth) => svc.consumer_pipelined(t, cfg.clone(), depth)?,
                None => svc.consumer(t, cfg.clone())?,
            });
        }
        let activity = svc.plane().map(|p| p.activity());
        let seen = activity.as_ref().map_or(0, |a| a.seq());
        Ok(Self {
            topics: topics.iter().map(|t| t.to_string()).collect(),
            consumers,
            activity,
            seen,
        })
    }

    /// Topic names, in the index order [`FeedBatch::topic`] refers to.
    pub fn topics(&self) -> &[String] {
        &self.topics
    }

    /// Pull up to `max_per_topic` events from every topic. Nonblocking:
    /// topics with nothing available contribute no batch, and an empty
    /// result means the whole feed is (currently) drained.
    pub fn poll(&mut self, max_per_topic: usize) -> Result<Vec<FeedBatch>> {
        if let Some(a) = &self.activity {
            // remember where the plane was *before* reading, so appends
            // racing this poll re-trigger the next wait instead of being
            // slept past
            self.seen = a.seq();
        }
        let mut out = Vec::new();
        for (i, c) in self.consumers.iter_mut().enumerate() {
            let events = c.pull(max_per_topic)?;
            if !events.is_empty() {
                out.push(FeedBatch { topic: i, events });
            }
        }
        Ok(out)
    }

    /// Sleep until the shard plane applies an append the feed has not yet
    /// polled past, or `timeout` elapses. Returns whether new activity was
    /// observed. Without a plane (virtual-time service) this returns
    /// `false` immediately — poll synchronously instead.
    pub fn wait_activity(&mut self, timeout: std::time::Duration) -> bool {
        let Some(a) = &self.activity else {
            return false;
        };
        a.wait_past(self.seen, timeout) > self.seen
    }

    /// Sum of claimed-but-undelivered events across the feed's consumers
    /// (populated at drop for pipelined feeds; see
    /// [`Consumer::discarded_claims`]).
    pub fn discarded_claims(&self) -> u64 {
        self.consumers.iter().map(|c| c.discarded_claims().count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bedrock::BedrockConfig;
    use crate::event::{Event, Metadata};
    use crate::producer::ProducerConfig;
    use serde_json::json;

    fn ev(i: u64) -> Event {
        Event::new(Metadata::Json(json!({ "i": i })), bytes::Bytes::new())
    }

    #[test]
    fn feed_polls_across_topics_under_one_group() {
        let svc = BedrockConfig::wms_default().bootstrap().unwrap();
        let mut p1 = svc.producer("task-done", ProducerConfig::default()).unwrap();
        let mut p2 = svc.producer("comm-events", ProducerConfig::default()).unwrap();
        for i in 0..10 {
            p1.push(ev(i)).unwrap();
        }
        for i in 0..5 {
            p2.push(ev(i)).unwrap();
        }
        drop((p1, p2));
        let cfg = ConsumerConfig { group: "feed-test".into(), prefetch: 64 };
        let mut feed = GroupFeed::new(&svc, &["task-done", "comm-events"], cfg, None).unwrap();
        let mut got = [0usize; 2];
        loop {
            let batches = feed.poll(3).unwrap();
            if batches.is_empty() {
                break;
            }
            for b in batches {
                got[b.topic] += b.events.len();
            }
        }
        assert_eq!(got, [10, 5]);
        assert_eq!(feed.topics(), &["task-done".to_string(), "comm-events".to_string()]);
        // a second feed under another group sees everything again
        let cfg2 = ConsumerConfig { group: "feed-test-2".into(), prefetch: 64 };
        let mut feed2 = GroupFeed::new(&svc, &["task-done"], cfg2, None).unwrap();
        let mut total = 0;
        loop {
            let n: usize = feed2.poll(64).unwrap().iter().map(|b| b.events.len()).sum();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn wait_activity_is_immediate_without_a_plane() {
        let svc = BedrockConfig::wms_default().bootstrap().unwrap();
        let cfg = ConsumerConfig { group: "vt".into(), prefetch: 16 };
        let mut feed = GroupFeed::new(&svc, &["logs"], cfg, None).unwrap();
        let t0 = std::time::Instant::now();
        assert!(!feed.wait_activity(std::time::Duration::from_secs(5)));
        assert!(t0.elapsed() < std::time::Duration::from_secs(1), "no plane: no blocking");
    }

    #[test]
    fn wait_activity_wakes_on_plane_append() {
        let svc_cfg = crate::ServiceConfig {
            mode: crate::ServiceMode::RealTime { shards: 2 },
            ..Default::default()
        };
        let svc = BedrockConfig::wms_default().bootstrap_with(&svc_cfg).unwrap();
        let cfg = ConsumerConfig { group: "rt".into(), prefetch: 16 };
        let mut feed = GroupFeed::new(&svc, &["task-done"], cfg, None).unwrap();
        assert!(!feed.wait_activity(std::time::Duration::from_millis(50)), "idle plane");
        let mut p = svc.producer("task-done", ProducerConfig::default()).unwrap();
        p.push(ev(1)).unwrap();
        p.sync().unwrap();
        assert!(feed.wait_activity(std::time::Duration::from_secs(10)), "append wakes the feed");
        let n: usize = feed.poll(16).unwrap().iter().map(|b| b.events.len()).sum();
        assert_eq!(n, 1);
        // polling advances the seen watermark: quiet plane, no new wake
        assert!(!feed.wait_activity(std::time::Duration::from_millis(50)));
        svc.shutdown().unwrap();
    }
}
