//! Consumers: pull-based, prefetching, exactly-once-per-group delivery.
//!
//! A consumer belongs to a *consumer group*. Group progress (the next
//! unclaimed offset per partition) lives in the shared Yokan KV store, so
//! any number of consumers in one group divide the stream between them,
//! each event going to exactly one of them. Claiming is atomic
//! (reserve-then-read), and partition order is preserved within a claim.
//!
//! Because partition logs are persistent, a fresh group created after the
//! workflow finishes replays the whole stream — the paper's post-processing
//! mode — while a group created up front tails it in situ.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

use bytes::Bytes;
use dtf_core::error::Result;

use crate::event::StoredEvent;
use crate::topic::Topic;
use crate::yokan::Yokan;

/// Consumer tuning parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsumerConfig {
    /// Consumer-group name; groups share progress through Yokan.
    pub group: String,
    /// How many events to claim per partition when the local buffer runs
    /// dry (Mofka's prefetching).
    pub prefetch: usize,
}

impl Default for ConsumerConfig {
    fn default() -> Self {
        Self { group: "default".into(), prefetch: 256 }
    }
}

/// A pull consumer bound to one topic.
#[derive(Debug)]
pub struct Consumer {
    topic: Arc<Topic>,
    yokan: Arc<Yokan>,
    cfg: ConsumerConfig,
    /// Locally claimed but not yet delivered events.
    buffer: std::collections::VecDeque<StoredEvent>,
    /// Next partition to claim from (round-robin fairness).
    next_partition: u32,
}

impl Consumer {
    pub(crate) fn new(topic: Arc<Topic>, yokan: Arc<Yokan>, cfg: ConsumerConfig) -> Self {
        assert!(cfg.prefetch >= 1, "prefetch must be >= 1");
        Self { topic, yokan, cfg, buffer: std::collections::VecDeque::new(), next_partition: 0 }
    }

    fn offset_key(&self, partition: u32) -> String {
        format!("group/{}/{}/{}", self.topic.name(), self.cfg.group, partition)
    }

    /// Atomically claim up to `n` offsets in `partition`; returns the
    /// claimed half-open range.
    fn claim(&self, partition: u32, n: usize) -> Result<(u64, u64)> {
        let avail = self.topic.partition_len(partition)?;
        let mut claimed = (0, 0);
        self.yokan.update(&self.offset_key(partition), |old| {
            let cur: u64 = old
                .and_then(|b| std::str::from_utf8(b).ok())
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let end = avail.min(cur + n as u64).max(cur);
            claimed = (cur, end);
            Bytes::from(end.to_string())
        });
        Ok(claimed)
    }

    fn refill(&mut self) -> Result<()> {
        let parts = self.topic.num_partitions();
        for _ in 0..parts {
            let p = self.next_partition;
            self.next_partition = (self.next_partition + 1) % parts;
            let (start, end) = self.claim(p, self.cfg.prefetch)?;
            if end > start {
                let events = self.topic.read(p, start, (end - start) as usize)?;
                debug_assert_eq!(events.len() as u64, end - start);
                self.buffer.extend(events);
                return Ok(());
            }
        }
        Ok(())
    }

    /// Pull up to `max` events. Returns fewer (possibly zero) if the stream
    /// is currently drained — nonblocking, like Mofka's pull API.
    pub fn pull(&mut self, max: usize) -> Result<Vec<StoredEvent>> {
        if self.buffer.len() < max {
            self.refill()?;
        }
        let take = max.min(self.buffer.len());
        Ok(self.buffer.drain(..take).collect())
    }

    /// Drain everything currently in the topic for this group.
    pub fn drain_all(&mut self) -> Result<Vec<StoredEvent>> {
        let mut out = Vec::new();
        loop {
            let batch = self.pull(4096)?;
            if batch.is_empty() {
                break;
            }
            out.extend(batch);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::topic::TopicConfig;
    use crate::warabi::Warabi;
    use serde_json::json;
    use std::collections::HashSet;

    fn setup(parts: u32, n_events: u64) -> (Arc<Topic>, Arc<Yokan>) {
        let topic = Arc::new(Topic::new(
            "t",
            &TopicConfig { partitions: parts },
            Arc::new(Warabi::new()),
            None,
        ));
        for i in 0..n_events {
            topic
                .append_batch((i % parts as u64) as u32, vec![Event::meta_only(json!({ "i": i }))])
                .unwrap();
        }
        (topic, Arc::new(Yokan::new()))
    }

    fn consumer(topic: &Arc<Topic>, yokan: &Arc<Yokan>, group: &str) -> Consumer {
        Consumer::new(
            topic.clone(),
            yokan.clone(),
            ConsumerConfig { group: group.into(), prefetch: 16 },
        )
    }

    #[test]
    fn single_consumer_sees_every_event_once() {
        let (topic, yokan) = setup(4, 100);
        let mut c = consumer(&topic, &yokan, "g");
        let got = c.drain_all().unwrap();
        assert_eq!(got.len(), 100);
        let uniq: HashSet<u64> =
            got.iter().map(|e| e.event.metadata["i"].as_u64().unwrap()).collect();
        assert_eq!(uniq.len(), 100);
        // stream drained
        assert!(c.pull(10).unwrap().is_empty());
    }

    #[test]
    fn partition_order_preserved_within_group() {
        let (topic, yokan) = setup(2, 50);
        let mut c = consumer(&topic, &yokan, "g");
        let got = c.drain_all().unwrap();
        // per-partition offsets must be increasing in delivery order
        let mut last = std::collections::HashMap::new();
        for se in got {
            let prev = last.insert(se.id.partition, se.id.offset);
            if let Some(prev) = prev {
                assert!(se.id.offset > prev, "partition order violated");
            }
        }
    }

    #[test]
    fn two_groups_each_see_full_stream() {
        let (topic, yokan) = setup(2, 40);
        let mut a = consumer(&topic, &yokan, "analysis");
        let mut b = consumer(&topic, &yokan, "archive");
        assert_eq!(a.drain_all().unwrap().len(), 40);
        assert_eq!(b.drain_all().unwrap().len(), 40);
    }

    #[test]
    fn consumers_in_one_group_partition_the_stream() {
        let (topic, yokan) = setup(4, 200);
        let mut c1 = consumer(&topic, &yokan, "g");
        let mut c2 = consumer(&topic, &yokan, "g");
        let mut got = Vec::new();
        // interleave pulls
        loop {
            let a = c1.pull(7).unwrap();
            let b = c2.pull(5).unwrap();
            if a.is_empty() && b.is_empty() {
                break;
            }
            got.extend(a);
            got.extend(b);
        }
        assert_eq!(got.len(), 200, "no duplicates, no losses");
        let uniq: HashSet<u64> =
            got.iter().map(|e| e.event.metadata["i"].as_u64().unwrap()).collect();
        assert_eq!(uniq.len(), 200);
    }

    #[test]
    fn late_events_are_picked_up_in_situ() {
        let (topic, yokan) = setup(1, 5);
        let mut c = consumer(&topic, &yokan, "g");
        assert_eq!(c.drain_all().unwrap().len(), 5);
        // workflow continues producing
        topic.append_batch(0, vec![Event::meta_only(json!({ "i": 99 }))]).unwrap();
        let more = c.pull(10).unwrap();
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].event.metadata["i"], 99);
    }

    #[test]
    fn concurrent_group_members_see_exactly_once() {
        let (topic, yokan) = setup(4, 1000);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let topic = topic.clone();
                let yokan = yokan.clone();
                std::thread::spawn(move || {
                    let mut c = Consumer::new(
                        topic,
                        yokan,
                        ConsumerConfig { group: "g".into(), prefetch: 8 },
                    );
                    c.drain_all().unwrap()
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), 1000);
        let uniq: HashSet<(u32, u64)> = all.iter().map(|e| (e.id.partition, e.id.offset)).collect();
        assert_eq!(uniq.len(), 1000, "every event delivered exactly once across the group");
    }
}
