//! Consumers: pull-based, prefetching, exactly-once-per-group delivery.
//!
//! A consumer belongs to a *consumer group*. Group progress (the next
//! unclaimed offset per partition) lives in the shared Yokan KV store, so
//! any number of consumers in one group divide the stream between them,
//! each event going to exactly one of them. Claiming is atomic
//! (reserve-then-read), and partition order is preserved within a claim.
//!
//! Because partition logs are persistent, a fresh group created after the
//! workflow finishes replays the whole stream — the paper's post-processing
//! mode — while a group created up front tails it in situ.
//!
//! On a real-time service, [`crate::MofkaService::consumer_pipelined`]
//! opens a consumer whose claims run on a background *prefetch pipeline*:
//! a thread that keeps claiming and reading batches ahead of demand, up
//! to `depth` batches deep, so `pull` hands over staged events instead of
//! doing a claim round-trip in lockstep. All of a pipelined consumer's
//! claims go through that one thread (never `pull` directly), so
//! per-partition delivery order is identical to the synchronous path.
//! Claiming *is* the group's commit point: dropping a pipelined consumer
//! discards any claimed-but-undelivered batches still staged in its
//! pipeline (the group has moved past them), so drain before dropping —
//! the same at-most-once window every prefetching consumer has. The
//! discard is *counted*, never silent: drop drains the pipeline, tallies
//! every claimed-but-undelivered event into a [`DiscardedClaims`] handle
//! (clone it via [`Consumer::discarded_claims`] before dropping), and
//! logs the loss — so delivered + discarded always accounts for exactly
//! what the group's offsets say was claimed.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use bytes::Bytes;
use dtf_core::error::Result;

use crate::event::StoredEvent;
use crate::topic::Topic;
use crate::yokan::Yokan;

/// Atomically claim up to `n` offsets of `partition` for `group`;
/// returns the claimed half-open range. Shared by synchronous consumers
/// and the prefetch pipeline — one commit protocol, two drivers.
fn claim_range(
    topic: &Topic,
    yokan: &Yokan,
    group: &str,
    partition: u32,
    n: usize,
) -> Result<(u64, u64)> {
    let avail = topic.partition_len(partition)?;
    let mut claimed = (0, 0);
    yokan.update(&format!("group/{}/{}/{}", topic.name(), group, partition), |old| {
        let cur: u64 =
            old.and_then(|b| std::str::from_utf8(b).ok()).and_then(|s| s.parse().ok()).unwrap_or(0);
        let end = avail.min(cur + n as u64).max(cur);
        claimed = (cur, end);
        Bytes::from(end.to_string())
    });
    Ok(claimed)
}

/// Running count of claimed-but-undelivered events a consumer discarded
/// at shutdown. The handle is cloneable and outlives the consumer —
/// claim-conservation audits read it after the drop that populates it:
/// events delivered + events discarded == offsets the group advanced.
#[derive(Debug, Clone, Default)]
pub struct DiscardedClaims(Arc<AtomicU64>);

impl DiscardedClaims {
    /// Events discarded so far.
    pub fn count(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::AcqRel);
    }
}

/// The background half of a pipelined consumer: claims and reads batches
/// ahead of demand, staging them (bounded at `depth`) for `pull`.
#[derive(Debug)]
struct Prefetcher {
    stop: Arc<AtomicBool>,
    /// Set by the thread after a full claim round found nothing — the
    /// stream is drained *as of that round*; cleared when a claim lands.
    idle: Arc<AtomicBool>,
    rx: Option<mpsc::Receiver<Result<Vec<StoredEvent>>>>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// Tally of staged events thrown away when this pipeline shut down.
    discarded: DiscardedClaims,
}

impl Prefetcher {
    fn spawn(
        topic: Arc<Topic>,
        yokan: Arc<Yokan>,
        group: String,
        prefetch: usize,
        depth: usize,
        discarded: DiscardedClaims,
    ) -> Result<Self> {
        let (tx, rx) = mpsc::sync_channel::<Result<Vec<StoredEvent>>>(depth);
        let stop = Arc::new(AtomicBool::new(false));
        let idle = Arc::new(AtomicBool::new(false));
        let (t_stop, t_idle) = (stop.clone(), idle.clone());
        let handle = std::thread::Builder::new()
            .name("mofka-prefetch".into())
            .spawn(move || {
                let parts = topic.num_partitions();
                let mut p = 0u32;
                let mut round_claimed = 0usize;
                let mut round_empty = 0u32;
                // accumulation backoff (doubles while rounds run small)
                let mut pause = Duration::from_millis(1);
                const MAX_PAUSE: Duration = Duration::from_millis(32);
                while !t_stop.load(Ordering::Acquire) {
                    let staged = claim_range(&topic, &yokan, &group, p, prefetch).and_then(
                        |(start, end)| {
                            if end > start {
                                topic.read(p, start, (end - start) as usize).map(Some)
                            } else {
                                Ok(None)
                            }
                        },
                    );
                    p = (p + 1) % parts;
                    match staged {
                        Ok(Some(events)) => {
                            round_claimed += events.len();
                            t_idle.store(false, Ordering::Release);
                            // blocks when `depth` batches are staged
                            // (backpressure); fails when the consumer
                            // dropped its receiver — time to exit
                            if tx.send(Ok(events)).is_err() {
                                return;
                            }
                        }
                        Ok(None) => round_empty += 1,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                    if p == 0 {
                        // End of a claim round over every partition. When
                        // tailing live producers, claiming the instant
                        // events appear yields tiny batches whose fixed
                        // claim cost (two locks + a KV update + a channel
                        // wakeup) dwarfs the per-event work. After an
                        // underfull round, pause — doubling up to 20ms
                        // while rounds stay small — so the next round's
                        // batches accumulate: prefetch is batches ahead
                        // of demand, not latency. The decision is per
                        // round, not per claim, so one full partition
                        // can't reset the backoff the rest still need.
                        if round_empty >= parts {
                            // the whole round came up empty: report the
                            // stream drained so pulls stop waiting on us
                            t_idle.store(true, Ordering::Release);
                        }
                        if round_claimed < parts as usize * prefetch / 2 {
                            std::thread::sleep(pause);
                            pause = (pause * 2).min(MAX_PAUSE);
                        } else {
                            pause = Duration::from_millis(1);
                        }
                        round_claimed = 0;
                        round_empty = 0;
                    }
                }
            })
            .map_err(|e| dtf_core::error::DtfError::Io(format!("spawn prefetcher: {e}")))?;
        Ok(Self { stop, idle, rx: Some(rx), handle: Some(handle), discarded })
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Drain what the thread staged before the channel closes: these
        // batches are claimed — the group's offsets have moved past them
        // — so they are counted as discarded, never silently dropped.
        // Receiving unblocks a send in flight; the thread then observes
        // `stop`, exits, and drops its sender, ending the loop.
        let mut lost = 0u64;
        if let Some(rx) = self.rx.take() {
            while let Ok(batch) = rx.recv() {
                if let Ok(events) = batch {
                    lost += events.len() as u64;
                }
            }
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        if lost > 0 {
            self.discarded.add(lost);
        }
    }
}

/// Consumer tuning parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsumerConfig {
    /// Consumer-group name; groups share progress through Yokan.
    pub group: String,
    /// How many events to claim per partition when the local buffer runs
    /// dry (Mofka's prefetching).
    pub prefetch: usize,
}

impl Default for ConsumerConfig {
    fn default() -> Self {
        Self { group: "default".into(), prefetch: 256 }
    }
}

/// A pull consumer bound to one topic.
#[derive(Debug)]
pub struct Consumer {
    topic: Arc<Topic>,
    yokan: Arc<Yokan>,
    cfg: ConsumerConfig,
    /// Locally claimed but not yet delivered events.
    buffer: std::collections::VecDeque<StoredEvent>,
    /// Next partition to claim from (round-robin fairness).
    next_partition: u32,
    /// Background prefetch pipeline; `None` claims synchronously in
    /// `pull` (the deterministic path).
    pipeline: Option<Prefetcher>,
    /// Claimed-but-undelivered events discarded at drop (pipelined
    /// consumers only; stays 0 on the synchronous path until drop).
    discarded: DiscardedClaims,
}

impl Consumer {
    pub(crate) fn new(topic: Arc<Topic>, yokan: Arc<Yokan>, cfg: ConsumerConfig) -> Self {
        assert!(cfg.prefetch >= 1, "prefetch must be >= 1");
        Self {
            topic,
            yokan,
            cfg,
            buffer: std::collections::VecDeque::new(),
            next_partition: 0,
            pipeline: None,
            discarded: DiscardedClaims::default(),
        }
    }

    /// A consumer whose claims run on a background prefetch pipeline,
    /// `depth` claimed-batches ahead of demand. Real-time only — reach it
    /// through `MofkaService::consumer_pipelined`.
    pub(crate) fn pipelined(
        topic: Arc<Topic>,
        yokan: Arc<Yokan>,
        cfg: ConsumerConfig,
        depth: usize,
    ) -> Result<Self> {
        assert!(cfg.prefetch >= 1, "prefetch must be >= 1");
        assert!(depth >= 1, "pipeline depth must be >= 1");
        let discarded = DiscardedClaims::default();
        let pipeline = Prefetcher::spawn(
            topic.clone(),
            yokan.clone(),
            cfg.group.clone(),
            cfg.prefetch,
            depth,
            discarded.clone(),
        )?;
        Ok(Self {
            topic,
            yokan,
            cfg,
            buffer: std::collections::VecDeque::new(),
            next_partition: 0,
            pipeline: Some(pipeline),
            discarded,
        })
    }

    /// Handle to this consumer's discarded-claims tally. Clone it before
    /// dropping the consumer: the final count — every claimed event that
    /// was staged or buffered but never delivered — lands during drop.
    pub fn discarded_claims(&self) -> DiscardedClaims {
        self.discarded.clone()
    }

    /// Atomically claim up to `n` offsets in `partition`; returns the
    /// claimed half-open range.
    fn claim(&self, partition: u32, n: usize) -> Result<(u64, u64)> {
        claim_range(&self.topic, &self.yokan, &self.cfg.group, partition, n)
    }

    fn refill(&mut self) -> Result<()> {
        let parts = self.topic.num_partitions();
        for _ in 0..parts {
            let p = self.next_partition;
            self.next_partition = (self.next_partition + 1) % parts;
            let (start, end) = self.claim(p, self.cfg.prefetch)?;
            if end > start {
                let events = self.topic.read(p, start, (end - start) as usize)?;
                debug_assert_eq!(events.len() as u64, end - start);
                self.buffer.extend(events);
                return Ok(());
            }
        }
        Ok(())
    }

    /// Receive one staged batch from the prefetch thread, waiting out an
    /// in-flight claim if one is mid-read. Returns `None` once the stream
    /// is drained (idle prefetcher, nothing staged) or the pipeline ended.
    fn pipelined_recv(&mut self) -> Result<Option<Vec<StoredEvent>>> {
        let Some(pipe) = &self.pipeline else {
            return Ok(None);
        };
        let Some(rx) = &pipe.rx else { return Ok(None) };
        loop {
            match rx.try_recv() {
                Ok(batch) => return Ok(Some(batch?)),
                Err(mpsc::TryRecvError::Disconnected) => return Ok(None),
                Err(mpsc::TryRecvError::Empty) => {
                    // Nothing staged right now. Drained, or mid-claim?
                    if pipe.idle.load(Ordering::Acquire) {
                        return Ok(None); // drained as of the last claim round
                    }
                    // mid-claim: wait briefly for the in-flight batch,
                    // then re-check the idle flag
                    match rx.recv_timeout(Duration::from_millis(5)) {
                        Ok(batch) => return Ok(Some(batch?)),
                        Err(mpsc::RecvTimeoutError::Timeout) => {}
                        Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(None),
                    }
                }
            }
        }
    }

    /// Move staged pipeline batches into the local buffer until `want`
    /// events are on hand or the prefetcher reports the stream drained.
    /// Claims never happen here — only the prefetch thread claims, so
    /// delivery order per partition matches the synchronous path.
    fn pipelined_fill(&mut self, want: usize) -> Result<()> {
        while self.buffer.len() < want {
            match self.pipelined_recv()? {
                Some(batch) => self.buffer.extend(batch),
                None => break,
            }
        }
        Ok(())
    }

    /// Pull up to `max` events. Returns fewer (possibly zero) if the stream
    /// is currently drained — nonblocking, like Mofka's pull API. (A
    /// pipelined consumer waits for claims already in flight on its
    /// prefetch thread before reporting the stream drained.)
    pub fn pull(&mut self, max: usize) -> Result<Vec<StoredEvent>> {
        if self.pipeline.is_some() {
            // Fast path: with nothing buffered, a staged batch that fits
            // under `max` is handed to the caller as-is — no per-event
            // shuffle through the VecDeque.
            if self.buffer.is_empty() {
                match self.pipelined_recv()? {
                    Some(batch) if batch.len() <= max => return Ok(batch),
                    Some(batch) => self.buffer.extend(batch),
                    None => return Ok(Vec::new()),
                }
            }
            self.pipelined_fill(max)?;
        } else if self.buffer.len() < max {
            self.refill()?;
        }
        let take = max.min(self.buffer.len());
        Ok(self.buffer.drain(..take).collect())
    }

    /// Discarded-claim diagnostics are opt-in via `DTF_MOFKA_VERBOSE`:
    /// drop-time discards are expected for mid-run subscribers (live-view
    /// feeds detach while producers are still appending), so the default
    /// is the silent counter behind [`Consumer::discarded_claims`].
    fn log_discard(&self, total: u64) {
        if std::env::var_os("DTF_MOFKA_VERBOSE").is_none() {
            return;
        }
        eprintln!(
            "mofka: consumer (group {:?}, topic {:?}) dropped with {total} \
             claimed-but-undelivered events; the group's offsets have moved \
             past them (see Consumer::discarded_claims)",
            self.cfg.group,
            self.topic.name()
        );
    }

    /// Drain everything currently in the topic for this group.
    pub fn drain_all(&mut self) -> Result<Vec<StoredEvent>> {
        let mut out = Vec::new();
        loop {
            let batch = self.pull(4096)?;
            if batch.is_empty() {
                break;
            }
            out.extend(batch);
        }
        Ok(out)
    }
}

impl Drop for Consumer {
    fn drop(&mut self) {
        // locally buffered events are claimed too — count them with
        // whatever the pipeline drain finds
        let buffered = self.buffer.len() as u64;
        if buffered > 0 {
            self.discarded.add(buffered);
        }
        // Prefetcher::drop drains and tallies the staged batches
        self.pipeline.take();
        let total = self.discarded.count();
        if total > 0 {
            self.log_discard(total);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::topic::TopicConfig;
    use crate::warabi::Warabi;
    use serde_json::json;
    use std::collections::HashSet;

    fn setup(parts: u32, n_events: u64) -> (Arc<Topic>, Arc<Yokan>) {
        let topic = Arc::new(Topic::new(
            "t",
            &TopicConfig { partitions: parts },
            Arc::new(Warabi::new()),
            None,
        ));
        for i in 0..n_events {
            topic
                .append_batch((i % parts as u64) as u32, vec![Event::meta_only(json!({ "i": i }))])
                .unwrap();
        }
        (topic, Arc::new(Yokan::new()))
    }

    fn consumer(topic: &Arc<Topic>, yokan: &Arc<Yokan>, group: &str) -> Consumer {
        Consumer::new(
            topic.clone(),
            yokan.clone(),
            ConsumerConfig { group: group.into(), prefetch: 16 },
        )
    }

    #[test]
    fn single_consumer_sees_every_event_once() {
        let (topic, yokan) = setup(4, 100);
        let mut c = consumer(&topic, &yokan, "g");
        let got = c.drain_all().unwrap();
        assert_eq!(got.len(), 100);
        let uniq: HashSet<u64> =
            got.iter().map(|e| e.event.metadata["i"].as_u64().unwrap()).collect();
        assert_eq!(uniq.len(), 100);
        // stream drained
        assert!(c.pull(10).unwrap().is_empty());
    }

    #[test]
    fn partition_order_preserved_within_group() {
        let (topic, yokan) = setup(2, 50);
        let mut c = consumer(&topic, &yokan, "g");
        let got = c.drain_all().unwrap();
        // per-partition offsets must be increasing in delivery order
        let mut last = std::collections::HashMap::new();
        for se in got {
            let prev = last.insert(se.id.partition, se.id.offset);
            if let Some(prev) = prev {
                assert!(se.id.offset > prev, "partition order violated");
            }
        }
    }

    #[test]
    fn two_groups_each_see_full_stream() {
        let (topic, yokan) = setup(2, 40);
        let mut a = consumer(&topic, &yokan, "analysis");
        let mut b = consumer(&topic, &yokan, "archive");
        assert_eq!(a.drain_all().unwrap().len(), 40);
        assert_eq!(b.drain_all().unwrap().len(), 40);
    }

    #[test]
    fn consumers_in_one_group_partition_the_stream() {
        let (topic, yokan) = setup(4, 200);
        let mut c1 = consumer(&topic, &yokan, "g");
        let mut c2 = consumer(&topic, &yokan, "g");
        let mut got = Vec::new();
        // interleave pulls
        loop {
            let a = c1.pull(7).unwrap();
            let b = c2.pull(5).unwrap();
            if a.is_empty() && b.is_empty() {
                break;
            }
            got.extend(a);
            got.extend(b);
        }
        assert_eq!(got.len(), 200, "no duplicates, no losses");
        let uniq: HashSet<u64> =
            got.iter().map(|e| e.event.metadata["i"].as_u64().unwrap()).collect();
        assert_eq!(uniq.len(), 200);
    }

    #[test]
    fn late_events_are_picked_up_in_situ() {
        let (topic, yokan) = setup(1, 5);
        let mut c = consumer(&topic, &yokan, "g");
        assert_eq!(c.drain_all().unwrap().len(), 5);
        // workflow continues producing
        topic.append_batch(0, vec![Event::meta_only(json!({ "i": 99 }))]).unwrap();
        let more = c.pull(10).unwrap();
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].event.metadata["i"], 99);
    }

    #[test]
    fn pipelined_consumer_sees_every_event_once() {
        let (topic, yokan) = setup(4, 500);
        let mut c = Consumer::pipelined(
            topic,
            yokan,
            ConsumerConfig { group: "g".into(), prefetch: 16 },
            4,
        )
        .unwrap();
        let got = c.drain_all().unwrap();
        assert_eq!(got.len(), 500);
        let uniq: HashSet<u64> =
            got.iter().map(|e| e.event.metadata["i"].as_u64().unwrap()).collect();
        assert_eq!(uniq.len(), 500);
        assert!(c.pull(10).unwrap().is_empty(), "drained");
    }

    #[test]
    fn pipelined_consumer_preserves_partition_order() {
        let (topic, yokan) = setup(3, 300);
        let mut c =
            Consumer::pipelined(topic, yokan, ConsumerConfig { group: "g".into(), prefetch: 8 }, 2)
                .unwrap();
        let got = c.drain_all().unwrap();
        assert_eq!(got.len(), 300);
        let mut last = std::collections::HashMap::new();
        for se in got {
            if let Some(prev) = last.insert(se.id.partition, se.id.offset) {
                assert!(se.id.offset > prev, "partition order violated");
            }
        }
    }

    #[test]
    fn pipelined_consumer_tails_late_events() {
        let (topic, yokan) = setup(1, 5);
        let mut c = Consumer::pipelined(
            topic.clone(),
            yokan,
            ConsumerConfig { group: "g".into(), prefetch: 4 },
            2,
        )
        .unwrap();
        assert_eq!(c.drain_all().unwrap().len(), 5);
        topic.append_batch(0, vec![Event::meta_only(json!({ "i": 99 }))]).unwrap();
        // the prefetch thread claims it on its next round
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut more = Vec::new();
        while more.is_empty() && std::time::Instant::now() < deadline {
            more = c.pull(10).unwrap();
        }
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].event.metadata["i"], 99);
    }

    #[test]
    fn pipelined_and_sync_members_split_one_group() {
        let (topic, yokan) = setup(4, 400);
        let mut piped = Consumer::pipelined(
            topic.clone(),
            yokan.clone(),
            ConsumerConfig { group: "g".into(), prefetch: 8 },
            2,
        )
        .unwrap();
        let mut sync = consumer(&topic, &yokan, "g");
        let mut got = Vec::new();
        loop {
            let a = piped.pull(16).unwrap();
            let b = sync.pull(16).unwrap();
            if a.is_empty() && b.is_empty() {
                break;
            }
            got.extend(a);
            got.extend(b);
        }
        assert_eq!(got.len(), 400, "no duplicates, no losses across member kinds");
        let uniq: HashSet<(u32, u64)> = got.iter().map(|e| (e.id.partition, e.id.offset)).collect();
        assert_eq!(uniq.len(), 400);
    }

    /// Offsets the group has committed past, summed over partitions.
    fn group_claimed(topic: &Arc<Topic>, yokan: &Arc<Yokan>, group: &str) -> u64 {
        (0..topic.num_partitions())
            .map(|p| {
                yokan
                    .get(&format!("group/{}/{}/{}", topic.name(), group, p))
                    .and_then(|b| String::from_utf8(b.to_vec()).ok())
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or(0)
            })
            .sum()
    }

    #[test]
    fn dropped_pipeline_counts_discarded_claims_exactly() {
        let (topic, yokan) = setup(2, 200);
        let mut c = Consumer::pipelined(
            topic.clone(),
            yokan.clone(),
            ConsumerConfig { group: "g".into(), prefetch: 16 },
            4,
        )
        .unwrap();
        // deliver a prefix, then drop with batches still staged: pull(10)
        // buffers the rest of a 16-event batch, so something is always
        // left behind
        let delivered = c.pull(10).unwrap().len() as u64;
        let discarded = c.discarded_claims();
        drop(c);
        let claimed = group_claimed(&topic, &yokan, "g");
        assert!(discarded.count() > 0, "undelivered claims must be surfaced");
        assert_eq!(
            delivered + discarded.count(),
            claimed,
            "every claimed event is either delivered or counted as discarded"
        );
    }

    #[test]
    fn drained_consumer_discards_nothing() {
        let (topic, yokan) = setup(3, 90);
        let mut c = Consumer::pipelined(
            topic.clone(),
            yokan.clone(),
            ConsumerConfig { group: "g".into(), prefetch: 8 },
            2,
        )
        .unwrap();
        let got = c.drain_all().unwrap();
        assert_eq!(got.len(), 90);
        let discarded = c.discarded_claims();
        drop(c);
        assert_eq!(discarded.count(), 0, "a drained pipeline has nothing to discard");
        assert_eq!(group_claimed(&topic, &yokan, "g"), 90);
    }

    #[test]
    fn concurrent_group_members_see_exactly_once() {
        let (topic, yokan) = setup(4, 1000);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let topic = topic.clone();
                let yokan = yokan.clone();
                std::thread::spawn(move || {
                    let mut c = Consumer::new(
                        topic,
                        yokan,
                        ConsumerConfig { group: "g".into(), prefetch: 8 },
                    );
                    c.drain_all().unwrap()
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        assert_eq!(all.len(), 1000);
        let uniq: HashSet<(u32, u64)> = all.iter().map(|e| (e.id.partition, e.id.offset)).collect();
        assert_eq!(uniq.len(), 1000, "every event delivered exactly once across the group");
    }
}
