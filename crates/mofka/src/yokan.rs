//! Yokan-analog key/value micro-service.
//!
//! Mofka stores topic and consumer-group metadata in Yokan; so do we. The
//! store is a sorted map guarded by an `RwLock`, supporting point ops and
//! prefix listing (the operations Mofka's metadata layer uses).
//!
//! A Yokan can optionally be **durable**: [`Yokan::durable`] attaches a
//! write-ahead log (dtf-store's [`KvWal`]) and every mutation is written
//! through to it under the map lock, so the on-disk log always replays to
//! the in-memory map. Mutation signatures stay infallible — a WAL write
//! error is remembered and surfaced by the next [`Yokan::sync`], which is
//! the commit point anyway (group-commit semantics). [`Yokan::replay`]
//! reopens a directory read-only: the map is rebuilt from the log and the
//! log handle is dropped, so archive readers never mutate the store
//! beyond recovery's torn-tail repair.

use bytes::Bytes;
use dtf_core::error::{DtfError, Result};
use dtf_store::{KvWal, KvWalConfig, RecoveryReport};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::path::Path;

#[derive(Debug)]
struct Wal {
    kv: KvWal,
    /// First write error since the last successful sync; surfaced there.
    error: Option<String>,
}

impl Wal {
    fn record(&mut self, r: Result<()>) {
        if let Err(e) = r {
            self.error.get_or_insert(e.to_string());
        }
    }
}

/// A sorted KV store with prefix queries and an optional write-ahead log.
#[derive(Debug, Default)]
pub struct Yokan {
    map: RwLock<BTreeMap<String, Bytes>>,
    wal: Option<Mutex<Wal>>,
}

impl Yokan {
    /// A purely in-memory store (the seed behaviour).
    pub fn new() -> Self {
        Self::default()
    }

    /// Open (or create) a durable store rooted at `dir`: the WAL is
    /// replayed into the map and every future mutation writes through.
    pub fn durable(dir: &Path) -> Result<(Self, RecoveryReport)> {
        Self::durable_with(dir, KvWalConfig::default())
    }

    pub fn durable_with(dir: &Path, cfg: KvWalConfig) -> Result<(Self, RecoveryReport)> {
        let (kv, map, report) = KvWal::open(dir, cfg)?;
        Ok((Self { map: RwLock::new(map), wal: Some(Mutex::new(Wal { kv, error: None })) }, report))
    }

    /// Rebuild the map from the log at `dir` without keeping the log
    /// attached: reads only (after recovery's torn-tail repair). The
    /// archive-reader path — reopening the same directory twice is safe.
    pub fn replay(dir: &Path) -> Result<(Self, RecoveryReport)> {
        // no maintenance worker for a handle that is dropped immediately
        let cfg = KvWalConfig { background: false, ..KvWalConfig::default() };
        let (kv, map, report) = KvWal::open(dir, cfg)?;
        drop(kv);
        Ok((Self { map: RwLock::new(map), wal: None }, report))
    }

    /// Whether mutations are written through to a WAL.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    pub fn put(&self, key: impl Into<String>, value: impl Into<Bytes>) {
        let key = key.into();
        let value = value.into();
        let mut map = self.map.write();
        if let Some(wal) = &self.wal {
            let mut wal = wal.lock();
            let r = wal.kv.append_put(&key, &value);
            wal.record(r);
        }
        map.insert(key, value);
        self.maybe_maintain(&map);
    }

    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.map.read().get(key).cloned()
    }

    pub fn delete(&self, key: &str) -> bool {
        let mut map = self.map.write();
        if let Some(wal) = &self.wal {
            let mut wal = wal.lock();
            let r = wal.kv.append_delete(key);
            wal.record(r);
        }
        let existed = map.remove(key).is_some();
        self.maybe_maintain(&map);
        existed
    }

    pub fn contains(&self, key: &str) -> bool {
        self.map.read().contains_key(key)
    }

    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, in key order.
    pub fn list_prefix(&self, prefix: &str) -> Vec<(String, Bytes)> {
        self.map
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Atomically update the value at `key` with `f` (insert if absent,
    /// starting from `None`).
    pub fn update<F: FnOnce(Option<&Bytes>) -> Bytes>(&self, key: &str, f: F) {
        let mut map = self.map.write();
        let new = f(map.get(key));
        if let Some(wal) = &self.wal {
            let mut wal = wal.lock();
            let r = wal.kv.append_put(key, &new);
            wal.record(r);
        }
        map.insert(key.to_string(), new);
        self.maybe_maintain(&map);
    }

    /// Flush the WAL (group commit) and surface any write error deferred
    /// since the last sync. A no-op for in-memory stores.
    pub fn sync(&self) -> Result<()> {
        if let Some(wal) = &self.wal {
            let mut wal = wal.lock();
            if let Some(e) = wal.error.take() {
                return Err(DtfError::Io(e));
            }
            wal.kv.sync()?;
        }
        Ok(())
    }

    /// Drive WAL maintenance — periodic snapshots and threshold
    /// compaction, background by default — after a mutation. Failures are
    /// deferred to [`Yokan::sync`] like any other WAL error.
    fn maybe_maintain(&self, map: &BTreeMap<String, Bytes>) {
        if let Some(wal) = &self.wal {
            let mut wal = wal.lock();
            let r = wal.kv.maybe_maintain(map).map(|_| ());
            wal.record(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let kv = Yokan::new();
        assert!(kv.is_empty());
        kv.put("a", Bytes::from_static(b"1"));
        assert_eq!(kv.get("a"), Some(Bytes::from_static(b"1")));
        assert!(kv.contains("a"));
        assert!(kv.delete("a"));
        assert!(!kv.delete("a"));
        assert_eq!(kv.get("a"), None);
    }

    #[test]
    fn overwrite_replaces() {
        let kv = Yokan::new();
        kv.put("k", Bytes::from_static(b"old"));
        kv.put("k", Bytes::from_static(b"new"));
        assert_eq!(kv.get("k"), Some(Bytes::from_static(b"new")));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn prefix_listing_is_ordered_and_exact() {
        let kv = Yokan::new();
        kv.put("topic/a/0", Bytes::from_static(b"x"));
        kv.put("topic/a/1", Bytes::from_static(b"y"));
        kv.put("topic/b/0", Bytes::from_static(b"z"));
        kv.put("topiz", Bytes::from_static(b"w"));
        let got = kv.list_prefix("topic/a/");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, "topic/a/0");
        assert_eq!(got[1].0, "topic/a/1");
        assert!(kv.list_prefix("nope").is_empty());
    }

    #[test]
    fn update_inserts_and_mutates() {
        let kv = Yokan::new();
        kv.update("ctr", |old| {
            assert!(old.is_none());
            Bytes::from_static(b"1")
        });
        kv.update("ctr", |old| {
            assert_eq!(old.unwrap().as_ref(), b"1");
            Bytes::from_static(b"2")
        });
        assert_eq!(kv.get("ctr"), Some(Bytes::from_static(b"2")));
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let kv = Arc::new(Yokan::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let kv = kv.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        kv.put(format!("t{i}/{j}"), Bytes::from(vec![i as u8]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.len(), 800);
        assert_eq!(kv.list_prefix("t3/").len(), 100);
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dtf-yokan-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_survives_reopen_and_replay_is_read_only() {
        let dir = tmpdir("durable");
        {
            let (kv, _) = Yokan::durable(&dir).unwrap();
            assert!(kv.is_durable());
            kv.put("a", Bytes::from_static(b"1"));
            kv.update("a", |_| Bytes::from_static(b"2"));
            kv.put("gone", Bytes::from_static(b"x"));
            kv.delete("gone");
            kv.sync().unwrap();
        }
        let (kv, report) = Yokan::durable(&dir).unwrap();
        assert_eq!(report.records, 4);
        assert_eq!(kv.get("a"), Some(Bytes::from_static(b"2")));
        assert!(kv.get("gone").is_none());
        drop(kv);
        // replay twice: read-only opens never change what is recovered
        for _ in 0..2 {
            let (ro, _) = Yokan::replay(&dir).unwrap();
            assert!(!ro.is_durable());
            assert_eq!(ro.get("a"), Some(Bytes::from_static(b"2")));
            assert!(ro.sync().is_ok(), "sync is a no-op without a wal");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
