//! Yokan-analog key/value micro-service.
//!
//! Mofka stores topic and consumer-group metadata in Yokan; so do we. The
//! store is a sorted map guarded by an `RwLock`, supporting point ops and
//! prefix listing (the operations Mofka's metadata layer uses).

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// An in-memory sorted KV store with prefix queries.
#[derive(Debug, Default)]
pub struct Yokan {
    map: RwLock<BTreeMap<String, Bytes>>,
}

impl Yokan {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put(&self, key: impl Into<String>, value: impl Into<Bytes>) {
        self.map.write().insert(key.into(), value.into());
    }

    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.map.read().get(key).cloned()
    }

    pub fn delete(&self, key: &str) -> bool {
        self.map.write().remove(key).is_some()
    }

    pub fn contains(&self, key: &str) -> bool {
        self.map.read().contains_key(key)
    }

    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, in key order.
    pub fn list_prefix(&self, prefix: &str) -> Vec<(String, Bytes)> {
        self.map
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Atomically update the value at `key` with `f` (insert if absent,
    /// starting from `None`).
    pub fn update<F: FnOnce(Option<&Bytes>) -> Bytes>(&self, key: &str, f: F) {
        let mut map = self.map.write();
        let new = f(map.get(key));
        map.insert(key.to_string(), new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let kv = Yokan::new();
        assert!(kv.is_empty());
        kv.put("a", Bytes::from_static(b"1"));
        assert_eq!(kv.get("a"), Some(Bytes::from_static(b"1")));
        assert!(kv.contains("a"));
        assert!(kv.delete("a"));
        assert!(!kv.delete("a"));
        assert_eq!(kv.get("a"), None);
    }

    #[test]
    fn overwrite_replaces() {
        let kv = Yokan::new();
        kv.put("k", Bytes::from_static(b"old"));
        kv.put("k", Bytes::from_static(b"new"));
        assert_eq!(kv.get("k"), Some(Bytes::from_static(b"new")));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn prefix_listing_is_ordered_and_exact() {
        let kv = Yokan::new();
        kv.put("topic/a/0", Bytes::from_static(b"x"));
        kv.put("topic/a/1", Bytes::from_static(b"y"));
        kv.put("topic/b/0", Bytes::from_static(b"z"));
        kv.put("topiz", Bytes::from_static(b"w"));
        let got = kv.list_prefix("topic/a/");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, "topic/a/0");
        assert_eq!(got[1].0, "topic/a/1");
        assert!(kv.list_prefix("nope").is_empty());
    }

    #[test]
    fn update_inserts_and_mutates() {
        let kv = Yokan::new();
        kv.update("ctr", |old| {
            assert!(old.is_none());
            Bytes::from_static(b"1")
        });
        kv.update("ctr", |old| {
            assert_eq!(old.unwrap().as_ref(), b"1");
            Bytes::from_static(b"2")
        });
        assert_eq!(kv.get("ctr"), Some(Bytes::from_static(b"2")));
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let kv = Arc::new(Yokan::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let kv = kv.clone();
                std::thread::spawn(move || {
                    for j in 0..100 {
                        kv.put(format!("t{i}/{j}"), Bytes::from(vec![i as u8]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kv.len(), 800);
        assert_eq!(kv.list_prefix("t3/").len(), 100);
    }
}
