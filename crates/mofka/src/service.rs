//! The assembled Mofka service: topics + micro-services, thread-safe.
//!
//! A service is in-memory by default; [`ServiceConfig::persist`] roots it
//! in a store directory (`yokan/` for metadata + topic logs, `warabi/`
//! for blob payloads, both dtf-store logs). [`MofkaService::reopen`]
//! opens such a directory read-only — the archive path: recovery repairs
//! any torn tail, topics are rebuilt to their committed prefixes, and the
//! regular consumer API drains them exactly as an in-situ analysis would.

use dtf_store::RecoveryReport;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dtf_core::error::{DtfError, Result};

use crate::consumer::{Consumer, ConsumerConfig};
use crate::producer::{Producer, ProducerConfig};
use crate::topic::{Topic, TopicConfig};
use crate::warabi::Warabi;
use crate::yokan::Yokan;

/// Service-level configuration: where (whether) to persist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Root directory for durable state. `None` keeps the service fully
    /// in-memory (the default).
    pub persist: Option<PathBuf>,
}

/// What recovery found when a persisted service directory was opened.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceRecovery {
    pub yokan: RecoveryReport,
    pub warabi: RecoveryReport,
    /// Events restored into topic partitions (committed prefixes).
    pub restored_events: u64,
}

/// A running Mofka service instance. Cloneable handle semantics via `Arc`
/// are left to the caller; the service itself is `Send + Sync`.
///
/// ```
/// use dtf_mofka::{Event, MofkaService, TopicConfig, ConsumerConfig};
/// use dtf_mofka::producer::ProducerConfig;
///
/// let svc = MofkaService::new();
/// svc.create_topic("metrics", TopicConfig { partitions: 2 }).unwrap();
/// let mut producer = svc.producer("metrics", ProducerConfig::default()).unwrap();
/// producer.push(Event::meta_only(serde_json::json!({"sample": 1}))).unwrap();
/// producer.flush().unwrap();
///
/// let mut consumer = svc.consumer("metrics", ConsumerConfig::default()).unwrap();
/// let events = consumer.drain_all().unwrap();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].event.metadata["sample"], 1);
/// ```
#[derive(Debug)]
pub struct MofkaService {
    yokan: Arc<Yokan>,
    warabi: Arc<Warabi>,
    topics: RwLock<HashMap<String, Arc<Topic>>>,
}

impl Default for MofkaService {
    fn default() -> Self {
        Self::new()
    }
}

impl MofkaService {
    pub fn new() -> Self {
        Self {
            yokan: Arc::new(Yokan::new()),
            warabi: Arc::new(Warabi::new()),
            topics: RwLock::new(HashMap::new()),
        }
    }

    /// Build a service per `cfg`: in-memory when `persist` is unset,
    /// durable (with any existing state recovered and topics restored)
    /// when it names a directory.
    pub fn with_config(cfg: &ServiceConfig) -> Result<Self> {
        match &cfg.persist {
            None => Ok(Self::new()),
            Some(dir) => {
                let (yokan, _) = Yokan::durable(&dir.join("yokan"))?;
                let (warabi, _) = Warabi::durable(&dir.join("warabi"))?;
                let svc = Self {
                    yokan: Arc::new(yokan),
                    warabi: Arc::new(warabi),
                    topics: RwLock::new(HashMap::new()),
                };
                svc.restore_topics()?;
                Ok(svc)
            }
        }
    }

    /// Open a persisted service directory **read-only** — the archive
    /// path. Recovery repairs torn tails on disk (the only mutation);
    /// the returned service holds no log handles, so reopening the same
    /// directory any number of times yields the same committed state.
    pub fn reopen(dir: &Path) -> Result<(Self, ServiceRecovery)> {
        let (yokan, yokan_report) = Yokan::replay(&dir.join("yokan"))?;
        let (warabi, warabi_report) = Warabi::replay(&dir.join("warabi"))?;
        let svc = Self {
            yokan: Arc::new(yokan),
            warabi: Arc::new(warabi),
            topics: RwLock::new(HashMap::new()),
        };
        let restored_events = svc.restore_topics()?;
        Ok((svc, ServiceRecovery { yokan: yokan_report, warabi: warabi_report, restored_events }))
    }

    /// Rebuild every topic recorded under `topic-config/` from its
    /// persisted slots (committed prefixes only; see `Topic::restore`).
    fn restore_topics(&self) -> Result<u64> {
        let persist = self.yokan.is_durable().then(|| self.yokan.clone());
        let mut restored = 0u64;
        let mut topics = self.topics.write();
        for (key, raw) in self.yokan.list_prefix("topic-config/") {
            let name = key["topic-config/".len()..].to_string();
            let cfg: TopicConfig = serde_json::from_slice(&raw)?;
            let topic = Arc::new(Topic::new(&name, &cfg, self.warabi.clone(), persist.clone()));
            restored += topic.restore(&self.yokan)?;
            topics.insert(name, topic);
        }
        Ok(restored)
    }

    /// Flush durable state (group commit). The blob log flushes before
    /// the metadata log, so a crash between the two leaves orphan blobs
    /// (harmless) rather than metadata pointing at missing blobs.
    pub fn sync(&self) -> Result<()> {
        self.warabi.sync()?;
        self.yokan.sync()
    }

    /// Create a topic. Errors if it already exists.
    pub fn create_topic(&self, name: &str, cfg: TopicConfig) -> Result<()> {
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(DtfError::IllegalState(format!("topic {name} already exists")));
        }
        // record the topic config in Yokan, as Mofka does
        self.yokan.put(
            format!("topic-config/{name}"),
            serde_json::to_vec(&cfg).expect("topic config serializes"),
        );
        let persist = self.yokan.is_durable().then(|| self.yokan.clone());
        topics.insert(
            name.to_string(),
            Arc::new(Topic::new(name, &cfg, self.warabi.clone(), persist)),
        );
        Ok(())
    }

    pub fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DtfError::NotFound(format!("topic {name}")))
    }

    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Open a producer on `topic`.
    pub fn producer(&self, topic: &str, cfg: ProducerConfig) -> Result<Producer> {
        Ok(Producer::new(self.topic(topic)?, cfg))
    }

    /// Open a consumer on `topic`.
    pub fn consumer(&self, topic: &str, cfg: ConsumerConfig) -> Result<Consumer> {
        Ok(Consumer::new(self.topic(topic)?, self.yokan.clone(), cfg))
    }

    /// Stall one partition of `topic` (fault injection): appends stage
    /// invisibly until the stall lifts.
    pub fn stall_partition(&self, topic: &str, partition: u32) -> Result<()> {
        self.topic(topic)?.stall(partition)
    }

    /// Lift a stall on one partition of `topic`, draining staged events.
    pub fn unstall_partition(&self, topic: &str, partition: u32) -> Result<()> {
        self.topic(topic)?.unstall(partition)
    }

    /// Lift every stall on every topic (end of run: nothing may stay
    /// invisible when the post-run consumers drain).
    pub fn unstall_all(&self) {
        for t in self.topics.read().values() {
            t.unstall_all();
        }
    }

    /// The shared KV micro-service (exposed for group-offset inspection and
    /// for components that need durable metadata, e.g. Bedrock).
    pub fn yokan(&self) -> &Arc<Yokan> {
        &self.yokan
    }

    /// The shared blob micro-service.
    pub fn warabi(&self) -> &Arc<Warabi> {
        &self.warabi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use serde_json::json;

    #[test]
    fn create_produce_consume_roundtrip() {
        let svc = MofkaService::new();
        svc.create_topic("task-events", TopicConfig { partitions: 2 }).unwrap();
        let mut p = svc.producer("task-events", ProducerConfig::default()).unwrap();
        for i in 0..10 {
            p.push(Event::meta_only(json!({ "i": i }))).unwrap();
        }
        p.flush().unwrap();
        let mut c = svc.consumer("task-events", ConsumerConfig::default()).unwrap();
        assert_eq!(c.drain_all().unwrap().len(), 10);
    }

    #[test]
    fn duplicate_topic_rejected() {
        let svc = MofkaService::new();
        svc.create_topic("t", TopicConfig::default()).unwrap();
        assert!(svc.create_topic("t", TopicConfig::default()).is_err());
    }

    #[test]
    fn unknown_topic_errors() {
        let svc = MofkaService::new();
        assert!(svc.producer("nope", ProducerConfig::default()).is_err());
        assert!(svc.consumer("nope", ConsumerConfig::default()).is_err());
        assert!(svc.topic("nope").is_err());
    }

    #[test]
    fn topic_config_recorded_in_yokan() {
        let svc = MofkaService::new();
        svc.create_topic("t", TopicConfig { partitions: 7 }).unwrap();
        let raw = svc.yokan().get("topic-config/t").unwrap();
        let cfg: TopicConfig = serde_json::from_slice(&raw).unwrap();
        assert_eq!(cfg.partitions, 7);
    }

    #[test]
    fn durable_service_reopens_to_committed_state() {
        let dir = std::env::temp_dir().join(format!("dtf-svc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let svc =
                MofkaService::with_config(&ServiceConfig { persist: Some(dir.clone()) }).unwrap();
            svc.create_topic("events", TopicConfig { partitions: 2 }).unwrap();
            let mut p = svc.producer("events", ProducerConfig::default()).unwrap();
            for i in 0..20 {
                p.push(Event::new(json!({"i": i}), bytes::Bytes::from(vec![i as u8; 8]))).unwrap();
            }
            p.flush().unwrap();
            svc.sync().unwrap();
        }
        let (svc, recovery) = MofkaService::reopen(&dir).unwrap();
        assert_eq!(recovery.restored_events, 20);
        assert!(!recovery.yokan.torn && !recovery.warabi.torn);
        let mut c = svc.consumer("events", ConsumerConfig::default()).unwrap();
        let events = c.drain_all().unwrap();
        assert_eq!(events.len(), 20);
        for e in &events {
            let i = e.event.metadata["i"].as_u64().unwrap();
            assert_eq!(e.event.data.as_ref(), vec![i as u8; 8].as_slice());
        }
        // reopen is read-only: a second open sees identical state
        let (svc2, recovery2) = MofkaService::reopen(&dir).unwrap();
        assert_eq!(recovery2.restored_events, 20);
        assert_eq!(svc2.topic("events").unwrap().total_len(), 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn topic_names_sorted() {
        let svc = MofkaService::new();
        svc.create_topic("b", TopicConfig::default()).unwrap();
        svc.create_topic("a", TopicConfig::default()).unwrap();
        assert_eq!(svc.topic_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
