//! The assembled Mofka service: topics + micro-services, thread-safe.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

use dtf_core::error::{DtfError, Result};

use crate::consumer::{Consumer, ConsumerConfig};
use crate::producer::{Producer, ProducerConfig};
use crate::topic::{Topic, TopicConfig};
use crate::warabi::Warabi;
use crate::yokan::Yokan;

/// A running Mofka service instance. Cloneable handle semantics via `Arc`
/// are left to the caller; the service itself is `Send + Sync`.
///
/// ```
/// use dtf_mofka::{Event, MofkaService, TopicConfig, ConsumerConfig};
/// use dtf_mofka::producer::ProducerConfig;
///
/// let svc = MofkaService::new();
/// svc.create_topic("metrics", TopicConfig { partitions: 2 }).unwrap();
/// let mut producer = svc.producer("metrics", ProducerConfig::default()).unwrap();
/// producer.push(Event::meta_only(serde_json::json!({"sample": 1}))).unwrap();
/// producer.flush().unwrap();
///
/// let mut consumer = svc.consumer("metrics", ConsumerConfig::default()).unwrap();
/// let events = consumer.drain_all().unwrap();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].event.metadata["sample"], 1);
/// ```
#[derive(Debug)]
pub struct MofkaService {
    yokan: Arc<Yokan>,
    warabi: Arc<Warabi>,
    topics: RwLock<HashMap<String, Arc<Topic>>>,
}

impl Default for MofkaService {
    fn default() -> Self {
        Self::new()
    }
}

impl MofkaService {
    pub fn new() -> Self {
        Self {
            yokan: Arc::new(Yokan::new()),
            warabi: Arc::new(Warabi::new()),
            topics: RwLock::new(HashMap::new()),
        }
    }

    /// Create a topic. Errors if it already exists.
    pub fn create_topic(&self, name: &str, cfg: TopicConfig) -> Result<()> {
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(DtfError::IllegalState(format!("topic {name} already exists")));
        }
        // record the topic config in Yokan, as Mofka does
        self.yokan.put(
            format!("topic-config/{name}"),
            serde_json::to_vec(&cfg).expect("topic config serializes"),
        );
        topics.insert(name.to_string(), Arc::new(Topic::new(name, &cfg, self.warabi.clone())));
        Ok(())
    }

    pub fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DtfError::NotFound(format!("topic {name}")))
    }

    pub fn topic_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.topics.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Open a producer on `topic`.
    pub fn producer(&self, topic: &str, cfg: ProducerConfig) -> Result<Producer> {
        Ok(Producer::new(self.topic(topic)?, cfg))
    }

    /// Open a consumer on `topic`.
    pub fn consumer(&self, topic: &str, cfg: ConsumerConfig) -> Result<Consumer> {
        Ok(Consumer::new(self.topic(topic)?, self.yokan.clone(), cfg))
    }

    /// Stall one partition of `topic` (fault injection): appends stage
    /// invisibly until the stall lifts.
    pub fn stall_partition(&self, topic: &str, partition: u32) -> Result<()> {
        self.topic(topic)?.stall(partition)
    }

    /// Lift a stall on one partition of `topic`, draining staged events.
    pub fn unstall_partition(&self, topic: &str, partition: u32) -> Result<()> {
        self.topic(topic)?.unstall(partition)
    }

    /// Lift every stall on every topic (end of run: nothing may stay
    /// invisible when the post-run consumers drain).
    pub fn unstall_all(&self) {
        for t in self.topics.read().values() {
            t.unstall_all();
        }
    }

    /// The shared KV micro-service (exposed for group-offset inspection and
    /// for components that need durable metadata, e.g. Bedrock).
    pub fn yokan(&self) -> &Arc<Yokan> {
        &self.yokan
    }

    /// The shared blob micro-service.
    pub fn warabi(&self) -> &Arc<Warabi> {
        &self.warabi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use serde_json::json;

    #[test]
    fn create_produce_consume_roundtrip() {
        let svc = MofkaService::new();
        svc.create_topic("task-events", TopicConfig { partitions: 2 }).unwrap();
        let mut p = svc.producer("task-events", ProducerConfig::default()).unwrap();
        for i in 0..10 {
            p.push(Event::meta_only(json!({ "i": i }))).unwrap();
        }
        p.flush().unwrap();
        let mut c = svc.consumer("task-events", ConsumerConfig::default()).unwrap();
        assert_eq!(c.drain_all().unwrap().len(), 10);
    }

    #[test]
    fn duplicate_topic_rejected() {
        let svc = MofkaService::new();
        svc.create_topic("t", TopicConfig::default()).unwrap();
        assert!(svc.create_topic("t", TopicConfig::default()).is_err());
    }

    #[test]
    fn unknown_topic_errors() {
        let svc = MofkaService::new();
        assert!(svc.producer("nope", ProducerConfig::default()).is_err());
        assert!(svc.consumer("nope", ConsumerConfig::default()).is_err());
        assert!(svc.topic("nope").is_err());
    }

    #[test]
    fn topic_config_recorded_in_yokan() {
        let svc = MofkaService::new();
        svc.create_topic("t", TopicConfig { partitions: 7 }).unwrap();
        let raw = svc.yokan().get("topic-config/t").unwrap();
        let cfg: TopicConfig = serde_json::from_slice(&raw).unwrap();
        assert_eq!(cfg.partitions, 7);
    }

    #[test]
    fn topic_names_sorted() {
        let svc = MofkaService::new();
        svc.create_topic("b", TopicConfig::default()).unwrap();
        svc.create_topic("a", TopicConfig::default()).unwrap();
        assert_eq!(svc.topic_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
