//! The assembled Mofka service: topics + micro-services, thread-safe.
//!
//! A service is in-memory by default; [`ServiceConfig::persist`] roots it
//! in a store directory (`yokan/` for metadata + topic logs, `warabi/`
//! for blob payloads, both dtf-store logs). [`MofkaService::reopen`]
//! opens such a directory read-only — the archive path: recovery repairs
//! any torn tail, topics are rebuilt to their committed prefixes, and the
//! regular consumer API drains them exactly as an in-situ analysis would.
//!
//! [`ServiceConfig::mode`] selects the data plane. The default,
//! [`ServiceMode::VirtualTime`], appends synchronously under the partition
//! lock — the deterministic path every simulated run takes, byte-identical
//! across runs. [`ServiceMode::RealTime`] activates the sharded concurrent
//! plane (see [`crate::shard`]): producers hand batches to shard-owning
//! worker threads, and consumers may opt into prefetch pipelines via
//! [`MofkaService::consumer_pipelined`]. The topic map itself is sharded
//! in both modes (lookup-only — it cannot affect event order).

use dtf_store::RecoveryReport;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dtf_core::error::{DtfError, Result};

use crate::consumer::{Consumer, ConsumerConfig};
use crate::feed::GroupFeed;
use crate::producer::{Producer, ProducerConfig};
use crate::shard::DataPlane;
use crate::topic::{Topic, TopicConfig};
use crate::warabi::Warabi;
use crate::yokan::Yokan;

/// Which data plane serves producers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ServiceMode {
    /// Synchronous appends under the partition lock — deterministic, the
    /// simulation path. The default.
    #[default]
    VirtualTime,
    /// The sharded concurrent plane: per-partition shard ownership with
    /// mpsc-batched producer handoff and optional consumer prefetch
    /// pipelines. For live services and the stress bench; never used by
    /// virtual-time simulated runs.
    RealTime {
        /// Worker shards; 0 = auto (available parallelism, min 2).
        shards: usize,
    },
}

/// Service-level configuration: where (whether) to persist, and which
/// data plane to run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Root directory for durable state. `None` keeps the service fully
    /// in-memory (the default).
    pub persist: Option<PathBuf>,
    /// Data-plane selection; defaults to the deterministic virtual-time
    /// path.
    pub mode: ServiceMode,
}

/// What recovery found when a persisted service directory was opened.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceRecovery {
    pub yokan: RecoveryReport,
    pub warabi: RecoveryReport,
    /// Events restored into topic partitions (committed prefixes).
    pub restored_events: u64,
}

/// Shards of the topic map. Topic lookup is read-mostly and per-client;
/// sharding the map keeps `topic()` calls from hundreds of concurrent
/// clients off one global lock. Must be a power of two (mask indexing).
const TOPIC_MAP_SHARDS: usize = 16;

/// One shard of the topic map: a plain map under its own lock.
type TopicMapShard = RwLock<HashMap<String, Arc<Topic>>>;

/// A sharded `name -> Topic` map: each name hashes to one shard with its
/// own `RwLock`. Lookup-only concurrency — which shard a name lands on
/// can never affect event content or order.
#[derive(Debug)]
struct TopicMap {
    shards: Box<[TopicMapShard]>,
}

impl TopicMap {
    fn new() -> Self {
        Self { shards: (0..TOPIC_MAP_SHARDS).map(|_| RwLock::new(HashMap::new())).collect() }
    }

    fn shard(&self, name: &str) -> &TopicMapShard {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        &self.shards[(h as usize) & (TOPIC_MAP_SHARDS - 1)]
    }

    fn get(&self, name: &str) -> Option<Arc<Topic>> {
        self.shard(name).read().get(name).cloned()
    }

    /// Insert under the shard's write lock, calling `make` only if the
    /// name is free — `make`'s side effects (recording the config in
    /// Yokan) stay atomic with the reservation, as they were under the
    /// old global lock.
    fn try_insert(
        &self,
        name: &str,
        make: impl FnOnce() -> Arc<Topic>,
    ) -> std::result::Result<(), ()> {
        let mut shard = self.shard(name).write();
        if shard.contains_key(name) {
            return Err(());
        }
        shard.insert(name.to_string(), make());
        Ok(())
    }

    fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for shard in self.shards.iter() {
            names.extend(shard.read().keys().cloned());
        }
        names.sort();
        names
    }

    fn all(&self) -> Vec<Arc<Topic>> {
        let mut topics = Vec::new();
        for shard in self.shards.iter() {
            topics.extend(shard.read().values().cloned());
        }
        topics
    }
}

/// A running Mofka service instance. Cloneable handle semantics via `Arc`
/// are left to the caller; the service itself is `Send + Sync`.
///
/// ```
/// use dtf_mofka::{Event, MofkaService, TopicConfig, ConsumerConfig};
/// use dtf_mofka::producer::ProducerConfig;
///
/// let svc = MofkaService::new();
/// svc.create_topic("metrics", TopicConfig { partitions: 2 }).unwrap();
/// let mut producer = svc.producer("metrics", ProducerConfig::default()).unwrap();
/// producer.push(Event::meta_only(serde_json::json!({"sample": 1}))).unwrap();
/// producer.flush().unwrap();
///
/// let mut consumer = svc.consumer("metrics", ConsumerConfig::default()).unwrap();
/// let events = consumer.drain_all().unwrap();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].event.metadata["sample"], 1);
/// ```
#[derive(Debug)]
pub struct MofkaService {
    yokan: Arc<Yokan>,
    warabi: Arc<Warabi>,
    topics: TopicMap,
    /// The concurrent data plane; `None` in virtual-time mode (and for
    /// read-only archive reopens).
    plane: Option<Arc<DataPlane>>,
}

impl Default for MofkaService {
    fn default() -> Self {
        Self::new()
    }
}

impl MofkaService {
    pub fn new() -> Self {
        Self {
            yokan: Arc::new(Yokan::new()),
            warabi: Arc::new(Warabi::new()),
            topics: TopicMap::new(),
            plane: None,
        }
    }

    /// An in-memory service running the sharded concurrent plane — the
    /// service-mode entry point for live (wall-clock) clients.
    pub fn real_time(shards: usize) -> Self {
        Self { plane: Some(DataPlane::spawned(shards)), ..Self::new() }
    }

    /// An in-memory service on a *manual* plane: producer flushes are
    /// queued per shard but applied only when the caller steps them
    /// ([`DataPlane::step_shard`] via [`Self::plane`]) or a barrier
    /// drains them inline. This is the deterministic-interleaving entry
    /// point the seeded schedule harness drives — every handoff state
    /// the spawned plane can reach is reachable one `step_shard` at a
    /// time, with no worker threads racing the schedule.
    pub fn manual(shards: usize) -> Self {
        Self { plane: Some(DataPlane::manual(shards)), ..Self::new() }
    }

    /// Build a service per `cfg`: in-memory when `persist` is unset,
    /// durable (with any existing state recovered and topics restored)
    /// when it names a directory; `cfg.mode` picks the data plane.
    pub fn with_config(cfg: &ServiceConfig) -> Result<Self> {
        let plane = match cfg.mode {
            ServiceMode::VirtualTime => None,
            ServiceMode::RealTime { shards } => Some(DataPlane::spawned(shards)),
        };
        match &cfg.persist {
            None => Ok(Self { plane, ..Self::new() }),
            Some(dir) => {
                let (yokan, _) = Yokan::durable(&dir.join("yokan"))?;
                let (warabi, _) = Warabi::durable(&dir.join("warabi"))?;
                let svc = Self {
                    yokan: Arc::new(yokan),
                    warabi: Arc::new(warabi),
                    topics: TopicMap::new(),
                    plane,
                };
                svc.restore_topics()?;
                Ok(svc)
            }
        }
    }

    /// Open a persisted service directory **read-only** — the archive
    /// path. Recovery repairs torn tails on disk (the only mutation);
    /// the returned service holds no log handles, so reopening the same
    /// directory any number of times yields the same committed state.
    /// Archive readers never get a data plane: if the producing service
    /// is still alive with batches queued in its shards, those batches
    /// are not yet committed and this reopen sees the clean committed
    /// prefix (see `MofkaService::shutdown` for the drain-first path).
    pub fn reopen(dir: &Path) -> Result<(Self, ServiceRecovery)> {
        let (yokan, yokan_report) = Yokan::replay(&dir.join("yokan"))?;
        let (warabi, warabi_report) = Warabi::replay(&dir.join("warabi"))?;
        let svc = Self {
            yokan: Arc::new(yokan),
            warabi: Arc::new(warabi),
            topics: TopicMap::new(),
            plane: None,
        };
        let restored_events = svc.restore_topics()?;
        Ok((svc, ServiceRecovery { yokan: yokan_report, warabi: warabi_report, restored_events }))
    }

    /// Rebuild every topic recorded under `topic-config/` from its
    /// persisted slots (committed prefixes only; see `Topic::restore`).
    fn restore_topics(&self) -> Result<u64> {
        let persist = self.yokan.is_durable().then(|| self.yokan.clone());
        let mut restored = 0u64;
        for (key, raw) in self.yokan.list_prefix("topic-config/") {
            let name = key["topic-config/".len()..].to_string();
            let cfg: TopicConfig = serde_json::from_slice(&raw)?;
            let topic = Arc::new(Topic::new(&name, &cfg, self.warabi.clone(), persist.clone()));
            restored += topic.restore(&self.yokan)?;
            let _ = self.topics.try_insert(&name, || topic);
        }
        Ok(restored)
    }

    /// Flush durable state (group commit). In real-time mode a plane
    /// barrier runs first, so every batch handed off before this call is
    /// appended — and therefore written through to the stores — before
    /// they flush. The blob log flushes before the metadata log, so a
    /// crash between the two leaves orphan blobs (harmless) rather than
    /// metadata pointing at missing blobs.
    pub fn sync(&self) -> Result<()> {
        if let Some(plane) = &self.plane {
            plane.barrier()?;
        }
        self.warabi.sync()?;
        self.yokan.sync()
    }

    /// Graceful shutdown of the data plane: drain every shard queue
    /// (surfacing deferred append errors), then flush durable state.
    /// After this, a `reopen` of the persist directory sees every event
    /// that was ever handed to a producer `flush` — queued batches are
    /// drained first, never dropped. The plane keeps running (workers
    /// stop only when the last handle drops), so this is safe to call
    /// more than once.
    pub fn shutdown(&self) -> Result<()> {
        self.sync()
    }

    /// Create a topic. Errors if it already exists.
    pub fn create_topic(&self, name: &str, cfg: TopicConfig) -> Result<()> {
        let persist = self.yokan.is_durable().then(|| self.yokan.clone());
        self.topics
            .try_insert(name, || {
                // record the topic config in Yokan, as Mofka does —
                // under the map-shard lock, atomic with the reservation
                self.yokan.put(
                    format!("topic-config/{name}"),
                    serde_json::to_vec(&cfg).expect("topic config serializes"),
                );
                Arc::new(Topic::new(name, &cfg, self.warabi.clone(), persist))
            })
            .map_err(|()| DtfError::IllegalState(format!("topic {name} already exists")))
    }

    pub fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics.get(name).ok_or_else(|| DtfError::NotFound(format!("topic {name}")))
    }

    pub fn topic_names(&self) -> Vec<String> {
        self.topics.names()
    }

    /// Open a producer on `topic`. In real-time mode its flushes hand
    /// batches to the shard plane; in virtual-time mode they append
    /// synchronously (the deterministic path).
    pub fn producer(&self, topic: &str, cfg: ProducerConfig) -> Result<Producer> {
        Ok(Producer::with_plane(self.topic(topic)?, cfg, self.plane.clone()))
    }

    /// Open a consumer on `topic` (synchronous claims — the
    /// deterministic path, available in every mode).
    pub fn consumer(&self, topic: &str, cfg: ConsumerConfig) -> Result<Consumer> {
        Ok(Consumer::new(self.topic(topic)?, self.yokan.clone(), cfg))
    }

    /// Open a consumer whose claims run on a background prefetch
    /// pipeline, `depth` claimed-batches ahead of demand (see
    /// `Consumer`). Real-time mode only: pipelined claims are
    /// wall-clock-dependent, so virtual-time services refuse them
    /// rather than silently losing determinism.
    pub fn consumer_pipelined(
        &self,
        topic: &str,
        cfg: ConsumerConfig,
        depth: usize,
    ) -> Result<Consumer> {
        if self.plane.is_none() {
            return Err(DtfError::IllegalState(
                "pipelined consumers need real-time mode (virtual-time claims must stay \
                 deterministic)"
                    .into(),
            ));
        }
        Consumer::pipelined(self.topic(topic)?, self.yokan.clone(), cfg, depth)
    }

    /// Open a [`crate::feed::GroupFeed`]: one consumer per listed topic,
    /// all under `cfg.group`, polled as a single stream. On a real-time
    /// service the feed can additionally park on the shard plane's
    /// activity signal between polls; on virtual-time services it is a
    /// plain synchronous multi-topic drain (available in every mode).
    pub fn group_feed(&self, topics: &[&str], cfg: ConsumerConfig) -> Result<GroupFeed> {
        GroupFeed::new(self, topics, cfg, None)
    }

    /// Like [`Self::group_feed`], but each topic's consumer claims on a
    /// background prefetch pipeline `depth` batches ahead. Real-time mode
    /// only, for the same reason as [`Self::consumer_pipelined`].
    pub fn group_feed_pipelined(
        &self,
        topics: &[&str],
        cfg: ConsumerConfig,
        depth: usize,
    ) -> Result<GroupFeed> {
        GroupFeed::new(self, topics, cfg, Some(depth))
    }

    /// The concurrent data plane, if this service runs one.
    pub fn plane(&self) -> Option<&Arc<DataPlane>> {
        self.plane.as_ref()
    }

    /// Stall one partition of `topic` (fault injection): appends stage
    /// invisibly until the stall lifts.
    pub fn stall_partition(&self, topic: &str, partition: u32) -> Result<()> {
        self.topic(topic)?.stall(partition)
    }

    /// Lift a stall on one partition of `topic`, draining staged events.
    pub fn unstall_partition(&self, topic: &str, partition: u32) -> Result<()> {
        self.topic(topic)?.unstall(partition)
    }

    /// Lift every stall on every topic (end of run: nothing may stay
    /// invisible when the post-run consumers drain).
    pub fn unstall_all(&self) {
        for t in self.topics.all() {
            t.unstall_all();
        }
    }

    /// The shared KV micro-service (exposed for group-offset inspection and
    /// for components that need durable metadata, e.g. Bedrock).
    pub fn yokan(&self) -> &Arc<Yokan> {
        &self.yokan
    }

    /// The shared blob micro-service.
    pub fn warabi(&self) -> &Arc<Warabi> {
        &self.warabi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use serde_json::json;

    #[test]
    fn create_produce_consume_roundtrip() {
        let svc = MofkaService::new();
        svc.create_topic("task-events", TopicConfig { partitions: 2 }).unwrap();
        let mut p = svc.producer("task-events", ProducerConfig::default()).unwrap();
        for i in 0..10 {
            p.push(Event::meta_only(json!({ "i": i }))).unwrap();
        }
        p.flush().unwrap();
        let mut c = svc.consumer("task-events", ConsumerConfig::default()).unwrap();
        assert_eq!(c.drain_all().unwrap().len(), 10);
    }

    #[test]
    fn duplicate_topic_rejected() {
        let svc = MofkaService::new();
        svc.create_topic("t", TopicConfig::default()).unwrap();
        assert!(svc.create_topic("t", TopicConfig::default()).is_err());
    }

    #[test]
    fn unknown_topic_errors() {
        let svc = MofkaService::new();
        assert!(svc.producer("nope", ProducerConfig::default()).is_err());
        assert!(svc.consumer("nope", ConsumerConfig::default()).is_err());
        assert!(svc.topic("nope").is_err());
    }

    #[test]
    fn topic_config_recorded_in_yokan() {
        let svc = MofkaService::new();
        svc.create_topic("t", TopicConfig { partitions: 7 }).unwrap();
        let raw = svc.yokan().get("topic-config/t").unwrap();
        let cfg: TopicConfig = serde_json::from_slice(&raw).unwrap();
        assert_eq!(cfg.partitions, 7);
    }

    #[test]
    fn durable_service_reopens_to_committed_state() {
        let dir = std::env::temp_dir().join(format!("dtf-svc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let svc = MofkaService::with_config(&ServiceConfig {
                persist: Some(dir.clone()),
                ..Default::default()
            })
            .unwrap();
            svc.create_topic("events", TopicConfig { partitions: 2 }).unwrap();
            let mut p = svc.producer("events", ProducerConfig::default()).unwrap();
            for i in 0..20 {
                p.push(Event::new(json!({"i": i}), bytes::Bytes::from(vec![i as u8; 8]))).unwrap();
            }
            p.flush().unwrap();
            svc.sync().unwrap();
        }
        let (svc, recovery) = MofkaService::reopen(&dir).unwrap();
        assert_eq!(recovery.restored_events, 20);
        assert!(!recovery.yokan.torn && !recovery.warabi.torn);
        let mut c = svc.consumer("events", ConsumerConfig::default()).unwrap();
        let events = c.drain_all().unwrap();
        assert_eq!(events.len(), 20);
        for e in &events {
            let i = e.event.metadata["i"].as_u64().unwrap();
            assert_eq!(e.event.data.as_ref(), vec![i as u8; 8].as_slice());
        }
        // reopen is read-only: a second open sees identical state
        let (svc2, recovery2) = MofkaService::reopen(&dir).unwrap();
        assert_eq!(recovery2.restored_events, 20);
        assert_eq!(svc2.topic("events").unwrap().total_len(), 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn topic_names_sorted() {
        let svc = MofkaService::new();
        svc.create_topic("b", TopicConfig::default()).unwrap();
        svc.create_topic("a", TopicConfig::default()).unwrap();
        assert_eq!(svc.topic_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn real_time_service_routes_flushes_through_the_plane() {
        let svc = MofkaService::real_time(2);
        assert!(svc.plane().is_some());
        svc.create_topic("t", TopicConfig { partitions: 2 }).unwrap();
        let mut p = svc.producer("t", ProducerConfig::default()).unwrap();
        for i in 0..100 {
            p.push(Event::meta_only(json!(i))).unwrap();
        }
        p.sync().unwrap();
        let mut c = svc.consumer("t", ConsumerConfig::default()).unwrap();
        assert_eq!(c.drain_all().unwrap().len(), 100);
    }

    #[test]
    fn virtual_time_service_refuses_pipelined_consumers() {
        let svc = MofkaService::new();
        svc.create_topic("t", TopicConfig::default()).unwrap();
        let err = svc.consumer_pipelined("t", ConsumerConfig::default(), 4).unwrap_err();
        assert!(err.to_string().contains("real-time"));
        // the real-time service grants them
        let rt = MofkaService::real_time(2);
        rt.create_topic("t", TopicConfig::default()).unwrap();
        assert!(rt.consumer_pipelined("t", ConsumerConfig::default(), 4).is_ok());
    }

    #[test]
    fn sharded_topic_map_serves_many_topics() {
        let svc = MofkaService::new();
        let names: Vec<String> = (0..64).map(|i| format!("topic-{i:02}")).collect();
        for n in &names {
            svc.create_topic(n, TopicConfig { partitions: 1 }).unwrap();
        }
        assert_eq!(svc.topic_names(), names, "sorted across map shards");
        for n in &names {
            assert_eq!(svc.topic(n).unwrap().name(), n);
        }
    }
}
