//! Warabi-analog blob-store micro-service.
//!
//! Mofka stores raw event payloads in Warabi regions. Blobs are immutable
//! once written; readers get cheap `Bytes` clones (reference-counted), which
//! is what makes high-fan-out consumption of the same payload inexpensive.

use bytes::Bytes;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Handle to a stored blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlobId(pub u64);

impl fmt::Display for BlobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blob-{}", self.0)
    }
}

/// An append-only blob store.
#[derive(Debug, Default)]
pub struct Warabi {
    blobs: RwLock<Vec<Bytes>>,
}

impl Warabi {
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a blob, returning its id.
    pub fn put(&self, data: impl Into<Bytes>) -> BlobId {
        let mut blobs = self.blobs.write();
        let id = BlobId(blobs.len() as u64);
        blobs.push(data.into());
        id
    }

    /// Fetch a blob (cheap clone of a refcounted buffer).
    pub fn get(&self, id: BlobId) -> Option<Bytes> {
        self.blobs.read().get(id.0 as usize).cloned()
    }

    /// Read a byte range of a blob.
    pub fn get_range(&self, id: BlobId, offset: usize, len: usize) -> Option<Bytes> {
        let blobs = self.blobs.read();
        let blob = blobs.get(id.0 as usize)?;
        if offset.checked_add(len)? > blob.len() {
            return None;
        }
        Some(blob.slice(offset..offset + len))
    }

    pub fn len(&self) -> usize {
        self.blobs.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.blobs.read().is_empty()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.blobs.read().iter().map(|b| b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let w = Warabi::new();
        let id = w.put(Bytes::from_static(b"hello"));
        assert_eq!(w.get(id).unwrap().as_ref(), b"hello");
        assert_eq!(w.len(), 1);
        assert_eq!(w.total_bytes(), 5);
    }

    #[test]
    fn ids_are_sequential() {
        let w = Warabi::new();
        let a = w.put(Bytes::from_static(b"a"));
        let b = w.put(Bytes::from_static(b"b"));
        assert_eq!(a, BlobId(0));
        assert_eq!(b, BlobId(1));
    }

    #[test]
    fn missing_blob_is_none() {
        let w = Warabi::new();
        assert!(w.get(BlobId(0)).is_none());
    }

    #[test]
    fn range_reads() {
        let w = Warabi::new();
        let id = w.put(Bytes::from_static(b"0123456789"));
        assert_eq!(w.get_range(id, 2, 3).unwrap().as_ref(), b"234");
        assert_eq!(w.get_range(id, 0, 10).unwrap().as_ref(), b"0123456789");
        assert!(w.get_range(id, 8, 3).is_none(), "past end");
        assert!(w.get_range(id, usize::MAX, 1).is_none(), "overflow");
    }

    #[test]
    fn concurrent_puts_all_retrievable() {
        use std::sync::Arc;
        let w = Arc::new(Warabi::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let w = w.clone();
                std::thread::spawn(move || {
                    (0..50)
                        .map(|j| (w.put(Bytes::from(vec![i, j])), vec![i, j]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (id, expect) in h.join().unwrap() {
                assert_eq!(w.get(id).unwrap().as_ref(), expect.as_slice());
            }
        }
        assert_eq!(w.len(), 200);
    }
}
