//! Warabi-analog blob-store micro-service.
//!
//! Mofka stores raw event payloads in Warabi regions. Blobs are immutable
//! once written; readers get cheap `Bytes` clones (reference-counted), which
//! is what makes high-fan-out consumption of the same payload inexpensive.
//!
//! Like [`Yokan`](crate::yokan::Yokan), a Warabi can be **durable**:
//! [`Warabi::durable`] backs the store with a dtf-store
//! [`SegmentedLog`] in which blob id == log record index, so recovery
//! yields the committed blob prefix in order. Write errors are deferred
//! to [`Warabi::sync`]; [`Warabi::replay`] reopens read-only for archive
//! consumers — **lazily**, through an indexed [`LogReader`]: only segment
//! headers (and the torn-tail candidate) are read at open, and blob
//! payloads are fetched on demand via sparse-index seeks through a block
//! cache instead of materializing the whole blob log in memory. A
//! dangling [`BlobId`] (beyond the recovered prefix after a crash) is
//! simply `None` from [`Warabi::get`] — callers decide whether that is an
//! error or a truncation point; [`Warabi::contains`] answers the
//! existence question without ever touching payload bytes.

use bytes::Bytes;
use dtf_core::error::{DtfError, Result};
use dtf_store::{CacheStats, LogConfig, LogReader, ReaderOptions, RecoveryReport, SegmentedLog};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Handle to a stored blob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlobId(pub u64);

impl fmt::Display for BlobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blob-{}", self.0)
    }
}

#[derive(Debug)]
struct Wal {
    log: SegmentedLog,
    error: Option<String>,
}

/// An append-only blob store with an optional durable log.
///
/// Three backings share one API: purely in-memory ([`Warabi::new`]),
/// durable write-through ([`Warabi::durable`] — blobs in memory *and* in
/// a log), and read-only archive ([`Warabi::replay`] — blobs stay on disk
/// behind an indexed reader; `blobs` then only holds post-archive puts,
/// addressed after the archived prefix).
#[derive(Debug, Default)]
pub struct Warabi {
    blobs: RwLock<Vec<Bytes>>,
    wal: Option<Mutex<Wal>>,
    archive: Option<LogReader>,
}

impl Warabi {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open (or create) a durable blob store at `dir`; committed blobs
    /// are recovered in id order.
    pub fn durable(dir: &Path) -> Result<(Self, RecoveryReport)> {
        Self::durable_with(dir, LogConfig::default())
    }

    pub fn durable_with(dir: &Path, cfg: LogConfig) -> Result<(Self, RecoveryReport)> {
        let (log, blobs, report) = SegmentedLog::open(dir, cfg)?;
        Ok((
            Self {
                blobs: RwLock::new(blobs),
                wal: Some(Mutex::new(Wal { log, error: None })),
                archive: None,
            },
            report,
        ))
    }

    /// Open the log at `dir` as a read-only archive (see `Yokan::replay`).
    /// Blobs are *not* loaded: an indexed [`LogReader`] serves them on
    /// demand through sidecar seeks and a block cache, so opening a
    /// GB-scale blob log costs headers plus one tail scan.
    pub fn replay(dir: &Path) -> Result<(Self, RecoveryReport)> {
        Self::replay_with(dir, ReaderOptions::default())
    }

    pub fn replay_with(dir: &Path, opts: ReaderOptions) -> Result<(Self, RecoveryReport)> {
        let (reader, report) = LogReader::open(dir, opts)?;
        Ok((Self { blobs: RwLock::new(Vec::new()), wal: None, archive: Some(reader) }, report))
    }

    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Blobs served lazily from an archived log (0 unless opened by
    /// [`Warabi::replay`]); ids below this resolve through the reader.
    fn archived(&self) -> u64 {
        self.archive.as_ref().map(|r| r.records()).unwrap_or(0)
    }

    /// Store a blob, returning its id.
    pub fn put(&self, data: impl Into<Bytes>) -> BlobId {
        let data = data.into();
        let mut blobs = self.blobs.write();
        let id = BlobId(self.archived() + blobs.len() as u64);
        if let Some(wal) = &self.wal {
            let mut wal = wal.lock();
            if let Err(e) = wal.log.append(&data) {
                wal.error.get_or_insert(e.to_string());
            }
        }
        blobs.push(data);
        id
    }

    /// Fetch a blob (cheap clone of a refcounted buffer; an archive read
    /// seeks to the blob's indexed block and caches it). `None` for an
    /// id past the end — reachable after crash recovery truncates the
    /// blob log, so callers must treat it as data loss, not a bug.
    pub fn get(&self, id: BlobId) -> Option<Bytes> {
        let archived = self.archived();
        if id.0 < archived {
            return self.archive.as_ref()?.get(id.0);
        }
        self.blobs.read().get((id.0 - archived) as usize).cloned()
    }

    /// Whether `id` names a stored blob — without reading its payload
    /// (an archive answers from the segment map alone).
    pub fn contains(&self, id: BlobId) -> bool {
        (id.0 as usize) < self.len()
    }

    /// Read a byte range of a blob.
    pub fn get_range(&self, id: BlobId, offset: usize, len: usize) -> Option<Bytes> {
        let blob = self.get(id)?;
        if offset.checked_add(len)? > blob.len() {
            return None;
        }
        Some(blob.slice(offset..offset + len))
    }

    pub fn len(&self) -> usize {
        (self.archived() as usize) + self.blobs.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored bytes. For an archive this comes from the segment
    /// map — no payloads are read to answer it.
    pub fn total_bytes(&self) -> usize {
        let archived = self.archive.as_ref().map(|r| r.payload_bytes() as usize).unwrap_or(0);
        archived + self.blobs.read().iter().map(|b| b.len()).sum::<usize>()
    }

    /// Block-cache statistics of the archive reader, when this store was
    /// opened by [`Warabi::replay`].
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.archive.as_ref().map(|r| r.cache_stats())
    }

    /// Flush the blob log and surface any deferred write error. A no-op
    /// for in-memory stores.
    pub fn sync(&self) -> Result<()> {
        if let Some(wal) = &self.wal {
            let mut wal = wal.lock();
            if let Some(e) = wal.error.take() {
                return Err(DtfError::Io(e));
            }
            wal.log.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let w = Warabi::new();
        let id = w.put(Bytes::from_static(b"hello"));
        assert_eq!(w.get(id).unwrap().as_ref(), b"hello");
        assert_eq!(w.len(), 1);
        assert_eq!(w.total_bytes(), 5);
    }

    #[test]
    fn ids_are_sequential() {
        let w = Warabi::new();
        let a = w.put(Bytes::from_static(b"a"));
        let b = w.put(Bytes::from_static(b"b"));
        assert_eq!(a, BlobId(0));
        assert_eq!(b, BlobId(1));
    }

    #[test]
    fn missing_blob_is_none() {
        let w = Warabi::new();
        assert!(w.get(BlobId(0)).is_none());
    }

    #[test]
    fn range_reads() {
        let w = Warabi::new();
        let id = w.put(Bytes::from_static(b"0123456789"));
        assert_eq!(w.get_range(id, 2, 3).unwrap().as_ref(), b"234");
        assert_eq!(w.get_range(id, 0, 10).unwrap().as_ref(), b"0123456789");
        assert!(w.get_range(id, 8, 3).is_none(), "past end");
        assert!(w.get_range(id, usize::MAX, 1).is_none(), "overflow");
    }

    #[test]
    fn concurrent_puts_all_retrievable() {
        use std::sync::Arc;
        let w = Arc::new(Warabi::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let w = w.clone();
                std::thread::spawn(move || {
                    (0..50)
                        .map(|j| (w.put(Bytes::from(vec![i, j])), vec![i, j]))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (id, expect) in h.join().unwrap() {
                assert_eq!(w.get(id).unwrap().as_ref(), expect.as_slice());
            }
        }
        assert_eq!(w.len(), 200);
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dtf-warabi-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_blobs_recover_in_id_order() {
        let dir = tmpdir("durable");
        {
            let (w, _) = Warabi::durable(&dir).unwrap();
            for i in 0..20u8 {
                assert_eq!(w.put(Bytes::from(vec![i; 4])), BlobId(i as u64));
            }
            w.sync().unwrap();
        }
        let (w, report) = Warabi::durable(&dir).unwrap();
        assert_eq!(report.records, 20);
        assert_eq!(w.len(), 20);
        for i in 0..20u8 {
            assert_eq!(w.get(BlobId(i as u64)).unwrap().as_ref(), &[i; 4]);
        }
        // ids keep counting from the recovered prefix
        assert_eq!(w.put(Bytes::from_static(b"next")), BlobId(20));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dangling_id_after_truncation_is_none() {
        let dir = tmpdir("dangling");
        {
            let (w, _) = Warabi::durable(&dir).unwrap();
            w.put(Bytes::from_static(b"kept"));
            w.put(Bytes::from_static(b"torn"));
            w.sync().unwrap();
        }
        // tear the second blob's frame
        let seg = dtf_store::log::segment_paths(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        std::fs::OpenOptions::new().write(true).open(&seg).unwrap().set_len(len - 1).unwrap();
        let (w, report) = Warabi::replay(&dir).unwrap();
        assert!(report.torn);
        assert_eq!(w.get(BlobId(0)).unwrap().as_ref(), b"kept");
        assert!(w.get(BlobId(1)).is_none(), "dangling id maps to None, not a panic");
        assert!(!w.contains(BlobId(1)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_serves_blobs_lazily_through_the_index() {
        let dir = tmpdir("lazy");
        let n = 300u64;
        {
            let cfg = LogConfig { segment_bytes: 1 << 10, ..LogConfig::default() };
            let (w, _) = Warabi::durable_with(&dir, cfg).unwrap();
            for i in 0..n {
                w.put(Bytes::from(format!("payload-{i:06}")));
            }
            w.sync().unwrap();
        }
        let (w, report) = Warabi::replay(&dir).unwrap();
        assert_eq!(report.records, n);
        assert_eq!(w.len(), n as usize);
        assert!(!w.is_empty());
        // existence answers come from the segment map, not payload reads
        assert!(w.contains(BlobId(n - 1)));
        assert!(!w.contains(BlobId(n)));
        assert_eq!(w.cache_stats().unwrap().misses, 0, "contains/len read no blocks");
        for id in [0u64, 1, 150, n - 1] {
            assert_eq!(w.get(BlobId(id)).unwrap().as_ref(), format!("payload-{id:06}").as_bytes());
        }
        assert_eq!(w.get_range(BlobId(7), 8, 6).unwrap().as_ref(), b"000007");
        let stats = w.cache_stats().unwrap();
        assert!(stats.misses > 0, "point reads faulted blocks in");
        assert_eq!(w.total_bytes(), n as usize * "payload-000000".len());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn puts_after_replay_chain_past_the_archived_prefix() {
        let dir = tmpdir("overlay");
        {
            let (w, _) = Warabi::durable(&dir).unwrap();
            w.put(Bytes::from_static(b"archived"));
            w.sync().unwrap();
        }
        let (w, _) = Warabi::replay(&dir).unwrap();
        let id = w.put(Bytes::from_static(b"fresh"));
        assert_eq!(id, BlobId(1), "ids keep counting past the archive");
        assert_eq!(w.get(BlobId(0)).unwrap().as_ref(), b"archived");
        assert_eq!(w.get(id).unwrap().as_ref(), b"fresh");
        assert_eq!(w.len(), 2);
        assert!(w.contains(id));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
