//! Instrumentation plugins (paper §III-E2).
//!
//! The paper extends Dask with scheduler and worker plugins that intercept
//! state transitions, completions, transfers, and log events, and stream
//! them to Mofka. [`WmsPlugin`] is that interception surface; the scheduler
//! and simulator invoke it at every observable event. Plugins must not
//! influence scheduling — they receive `&` references and return nothing.
//!
//! * [`CollectorPlugin`] buffers events in memory (useful in tests and for
//!   direct analysis).
//! * [`MofkaPlugin`] streams each record into the corresponding Mofka topic,
//!   which is the paper's actual data path.

use parking_lot::Mutex;
use std::sync::Arc;

use dtf_core::events::{
    CommEvent, LogEntry, ProvRecord, ProxyEvent, TaskDoneEvent, TaskMetaEvent, TransitionEvent,
    WarningEvent, WorkerTransitionEvent,
};
use dtf_mofka::producer::{PartitionStrategy, ProducerConfig};
use dtf_mofka::{Event, MofkaService, Producer};

/// Partitioning used for task-scoped topics: hash the serialized task key.
pub(crate) fn key_strategy() -> PartitionStrategy {
    PartitionStrategy::HashKey("key".to_string())
}

/// Interception surface for WMS instrumentation. All methods have empty
/// default bodies, so a plugin implements only what it needs.
pub trait WmsPlugin: Send {
    fn on_task_meta(&mut self, _event: &TaskMetaEvent) {}
    fn on_transition(&mut self, _event: &TransitionEvent) {}
    fn on_worker_transition(&mut self, _event: &WorkerTransitionEvent) {}
    fn on_task_done(&mut self, _event: &TaskDoneEvent) {}
    fn on_comm(&mut self, _event: &CommEvent) {}
    fn on_warning(&mut self, _event: &WarningEvent) {}
    fn on_log(&mut self, _entry: &LogEntry) {}
    /// Proxy-plane lifecycle records (publish/resolve/evict/re-source).
    fn on_proxy(&mut self, _event: &ProxyEvent) {}
    /// Flush any buffered telemetry (end of run).
    fn flush(&mut self) {}
}

/// In-memory event collector; shared buffers so the caller can inspect the
/// stream while the run proceeds.
#[derive(Debug, Default, Clone)]
pub struct CollectorPlugin {
    inner: Arc<Mutex<CollectedEvents>>,
}

/// Everything a collector plugin gathered.
#[derive(Debug, Default)]
pub struct CollectedEvents {
    pub meta: Vec<TaskMetaEvent>,
    pub transitions: Vec<TransitionEvent>,
    pub worker_transitions: Vec<WorkerTransitionEvent>,
    pub task_done: Vec<TaskDoneEvent>,
    pub comms: Vec<CommEvent>,
    pub warnings: Vec<WarningEvent>,
    pub logs: Vec<LogEntry>,
    pub proxies: Vec<ProxyEvent>,
}

impl CollectorPlugin {
    pub fn new() -> Self {
        Self::default()
    }

    /// Take ownership of everything collected so far.
    pub fn take(&self) -> CollectedEvents {
        std::mem::take(&mut self.inner.lock())
    }

    pub fn transition_count(&self) -> usize {
        self.inner.lock().transitions.len()
    }
}

impl WmsPlugin for CollectorPlugin {
    fn on_task_meta(&mut self, event: &TaskMetaEvent) {
        self.inner.lock().meta.push(event.clone());
    }

    fn on_transition(&mut self, event: &TransitionEvent) {
        self.inner.lock().transitions.push(event.clone());
    }

    fn on_worker_transition(&mut self, event: &WorkerTransitionEvent) {
        self.inner.lock().worker_transitions.push(event.clone());
    }

    fn on_task_done(&mut self, event: &TaskDoneEvent) {
        self.inner.lock().task_done.push(event.clone());
    }

    fn on_comm(&mut self, event: &CommEvent) {
        self.inner.lock().comms.push(event.clone());
    }

    fn on_warning(&mut self, event: &WarningEvent) {
        self.inner.lock().warnings.push(event.clone());
    }

    fn on_log(&mut self, entry: &LogEntry) {
        self.inner.lock().logs.push(entry.clone());
    }

    fn on_proxy(&mut self, event: &ProxyEvent) {
        self.inner.lock().proxies.push(event.clone());
    }
}

/// Streams every record into Mofka topics (created by
/// [`dtf_mofka::bedrock::BedrockConfig::wms_default`]).
pub struct MofkaPlugin {
    meta: Producer,
    transitions: Producer,
    worker_transitions: Producer,
    task_done: Producer,
    comms: Producer,
    warnings: Producer,
    logs: Producer,
    proxies: Producer,
}

impl MofkaPlugin {
    /// Topic names used by the plugin.
    pub const TOPICS: [&'static str; 8] = [
        "task-meta",
        "task-transitions",
        "worker-transitions",
        "task-done",
        "comm-events",
        "warnings",
        "logs",
        "proxy-events",
    ];

    pub fn new(service: &MofkaService, producer_cfg: ProducerConfig) -> dtf_core::Result<Self> {
        // task-scoped topics partition by task key so one task's events
        // stay in one partition, preserving their relative order end to end
        let by_key = |cfg: &ProducerConfig| ProducerConfig {
            batch_size: cfg.batch_size,
            strategy: crate::plugins::key_strategy(),
        };
        Ok(Self {
            meta: service.producer("task-meta", by_key(&producer_cfg))?,
            transitions: service.producer("task-transitions", by_key(&producer_cfg))?,
            worker_transitions: service.producer("worker-transitions", by_key(&producer_cfg))?,
            task_done: service.producer("task-done", by_key(&producer_cfg))?,
            comms: service.producer("comm-events", by_key(&producer_cfg))?,
            proxies: service.producer("proxy-events", by_key(&producer_cfg))?,
            warnings: service.producer("warnings", producer_cfg.clone())?,
            logs: service.producer("logs", producer_cfg)?,
        })
    }

    fn push<T: Clone + Into<ProvRecord>>(producer: &mut Producer, value: &T) {
        // Typed end to end: one clone of the record here is the only copy
        // made on the whole path — Mofka shares it by refcount and JSON is
        // rendered lazily at export boundaries. A full topic only errors on
        // misconfiguration, which bootstrap validated; instrumentation must
        // not take down the workflow.
        let _ = producer.push(Event::typed(value.clone()));
    }
}

impl WmsPlugin for MofkaPlugin {
    fn on_task_meta(&mut self, event: &TaskMetaEvent) {
        Self::push(&mut self.meta, event);
    }

    fn on_transition(&mut self, event: &TransitionEvent) {
        Self::push(&mut self.transitions, event);
    }

    fn on_worker_transition(&mut self, event: &WorkerTransitionEvent) {
        Self::push(&mut self.worker_transitions, event);
    }

    fn on_task_done(&mut self, event: &TaskDoneEvent) {
        Self::push(&mut self.task_done, event);
    }

    fn on_comm(&mut self, event: &CommEvent) {
        Self::push(&mut self.comms, event);
    }

    fn on_warning(&mut self, event: &WarningEvent) {
        Self::push(&mut self.warnings, event);
    }

    fn on_log(&mut self, entry: &LogEntry) {
        Self::push(&mut self.logs, entry);
    }

    fn on_proxy(&mut self, event: &ProxyEvent) {
        Self::push(&mut self.proxies, event);
    }

    fn flush(&mut self) {
        let _ = self.meta.flush();
        let _ = self.transitions.flush();
        let _ = self.worker_transitions.flush();
        let _ = self.task_done.flush();
        let _ = self.comms.flush();
        let _ = self.proxies.flush();
        let _ = self.warnings.flush();
        let _ = self.logs.flush();
    }
}

/// A fan-out plugin set, invoked in registration order.
#[derive(Default)]
pub struct PluginSet {
    plugins: Vec<Box<dyn WmsPlugin>>,
}

impl PluginSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn register(&mut self, plugin: Box<dyn WmsPlugin>) {
        self.plugins.push(plugin);
    }

    pub fn is_empty(&self) -> bool {
        self.plugins.is_empty()
    }
}

impl WmsPlugin for PluginSet {
    fn on_task_meta(&mut self, event: &TaskMetaEvent) {
        for p in &mut self.plugins {
            p.on_task_meta(event);
        }
    }

    fn on_transition(&mut self, event: &TransitionEvent) {
        for p in &mut self.plugins {
            p.on_transition(event);
        }
    }

    fn on_worker_transition(&mut self, event: &WorkerTransitionEvent) {
        for p in &mut self.plugins {
            p.on_worker_transition(event);
        }
    }

    fn on_task_done(&mut self, event: &TaskDoneEvent) {
        for p in &mut self.plugins {
            p.on_task_done(event);
        }
    }

    fn on_comm(&mut self, event: &CommEvent) {
        for p in &mut self.plugins {
            p.on_comm(event);
        }
    }

    fn on_warning(&mut self, event: &WarningEvent) {
        for p in &mut self.plugins {
            p.on_warning(event);
        }
    }

    fn on_log(&mut self, entry: &LogEntry) {
        for p in &mut self.plugins {
            p.on_log(entry);
        }
    }

    fn on_proxy(&mut self, event: &ProxyEvent) {
        for p in &mut self.plugins {
            p.on_proxy(event);
        }
    }

    fn flush(&mut self) {
        for p in &mut self.plugins {
            p.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::events::{Location, Stimulus, TaskState};
    use dtf_core::ids::{GraphId, NodeId, TaskKey, ThreadId, WorkerId};
    use dtf_core::time::{Dur, Time};
    use dtf_mofka::bedrock::BedrockConfig;
    use dtf_mofka::ConsumerConfig;

    fn transition() -> TransitionEvent {
        TransitionEvent {
            key: TaskKey::new("inc", 1, 0),
            graph: GraphId(0),
            from: TaskState::Waiting,
            to: TaskState::Processing,
            stimulus: Stimulus::Dispatched,
            location: Location::Scheduler,
            time: Time(5),
        }
    }

    fn done() -> TaskDoneEvent {
        TaskDoneEvent {
            key: TaskKey::new("inc", 1, 0),
            graph: GraphId(0),
            worker: WorkerId::new(NodeId(0), 0),
            thread: ThreadId(1),
            start: Time(0),
            stop: Time(10),
            nbytes: 64,
        }
    }

    #[test]
    fn collector_gathers_all_kinds() {
        let collector = CollectorPlugin::new();
        let mut plugin: Box<dyn WmsPlugin> = Box::new(collector.clone());
        plugin.on_transition(&transition());
        plugin.on_task_done(&done());
        plugin.on_warning(&WarningEvent {
            kind: dtf_core::events::WarningKind::GcPause,
            worker: None,
            time: Time(1),
            duration: Dur(5),
        });
        let events = collector.take();
        assert_eq!(events.transitions.len(), 1);
        assert_eq!(events.task_done.len(), 1);
        assert_eq!(events.warnings.len(), 1);
        // take() drains
        assert_eq!(collector.take().transitions.len(), 0);
    }

    #[test]
    fn mofka_plugin_streams_to_topics() {
        let svc = BedrockConfig::wms_default().bootstrap().unwrap();
        {
            let mut plugin = MofkaPlugin::new(&svc, ProducerConfig::default()).unwrap();
            plugin.on_transition(&transition());
            plugin.on_transition(&transition());
            plugin.on_task_done(&done());
            plugin.flush();
        }
        let mut c = svc
            .consumer("task-transitions", ConsumerConfig { group: "t".into(), prefetch: 16 })
            .unwrap();
        let events = c.drain_all().unwrap();
        assert_eq!(events.len(), 2);
        // the metadata is the typed TransitionEvent — no JSON round-trip
        let rec = events[0].event.metadata.as_record().expect("plugin pushes typed records");
        assert_eq!(**rec, ProvRecord::Transition(transition()));
        // and its lazy JSON rendering still matches eager serialization
        assert_eq!(
            serde_json::to_string(rec).unwrap(),
            serde_json::to_string(&transition()).unwrap()
        );
        let mut c =
            svc.consumer("task-done", ConsumerConfig { group: "t".into(), prefetch: 16 }).unwrap();
        assert_eq!(c.drain_all().unwrap().len(), 1);
    }

    #[test]
    fn plugin_set_fans_out() {
        let a = CollectorPlugin::new();
        let b = CollectorPlugin::new();
        let mut set = PluginSet::new();
        set.register(Box::new(a.clone()));
        set.register(Box::new(b.clone()));
        set.on_transition(&transition());
        assert_eq!(a.transition_count(), 1);
        assert_eq!(b.transition_count(), 1);
    }
}
