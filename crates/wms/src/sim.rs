//! The discrete-event cluster simulator.
//!
//! Drives the [`Scheduler`](crate::scheduler::Scheduler) under virtual time
//! against the `dtf-platform` cost models: task compute times (node profile
//! × stochastic jitter), in-task I/O through the Darshan-instrumented PFS,
//! dependency transfers through the network model, work-stealing
//! rebalances, heartbeat-based fault detection, and the event-loop /GC
//! stall process that produces the paper's Fig. 7 warnings.
//!
//! One [`SimCluster::run`] call executes one complete workflow run — job
//! allocation, worker startup, graph submission (all-at-once or
//! sequential), execution, shutdown — and returns the fused [`RunData`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;

use dtf_core::dist::{Exponential, Jitter, LogNormal, Sample};
use dtf_core::error::{DtfError, Result};
use dtf_core::events::{CommEvent, LogEntry, LogLevel, LogSource, WarningEvent, WarningKind};
use dtf_core::fault::FaultSchedule;
use dtf_core::ids::{ClientId, RunId, TaskKey, ThreadId, WorkerId};
use dtf_core::provenance::WmsConfig;
use dtf_core::rngx::RunRng;
use dtf_core::time::{Dur, Time};
use dtf_darshan::log::LogSet;
use dtf_darshan::{DarshanRuntime, DxtConfig, InstrumentedPfs};
use dtf_mofka::bedrock::BedrockConfig;
use dtf_mofka::producer::ProducerConfig;
use dtf_mofka::ssg::SsgGroup;
use dtf_mofka::MofkaService;
use dtf_platform::job::{AllocPolicy, JobRequest, JobScheduler};
use dtf_platform::{ClusterTopology, LoadProcess, NetworkConfig, NetworkModel, Pfs, PfsConfig};
use dtf_proxystore::{ProxyConfig, ProxyPlane};

use crate::graph::{Payload, SimAction, TaskGraph};
use crate::plugins::{MofkaPlugin, PluginSet, WmsPlugin};
use crate::rundata::{ArchiveMeta, RunData, ARCHIVE_META_KEY};
use crate::scheduler::{Action, Scheduler, SchedulerConfig};

/// How the client submits its graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitPolicy {
    /// Everything up front (ResNet152 — one graph; XGBoost could too).
    AllAtOnce,
    /// Next graph only after the previous completed (ImageProcessing's
    /// step-by-step pipeline; XGBoost's 74 chained graphs).
    Sequential,
}

/// A workflow handed to the simulator: graphs + dataset + client behaviour.
#[derive(Debug, Clone)]
pub struct SimWorkflow {
    pub name: String,
    pub graphs: Vec<TaskGraph>,
    pub submit: SubmitPolicy,
    /// Coordination before the first submission (connect to scheduler,
    /// wait for workers, build the first graph).
    pub startup: Dur,
    /// Client-side graph-construction time between sequential graphs.
    pub inter_graph: Dur,
    /// Teardown after the last task completes.
    pub shutdown: Dur,
    /// Files created on the PFS before the run: `(path, size, stripes)`.
    /// `FileId`s are assigned in order (0, 1, 2, …), so generators can
    /// reference them by index.
    pub dataset: Vec<(String, u64, u32)>,
}

/// Simulator configuration (platform + WMS + instrumentation).
///
/// Serializable: this is the `distributed.yaml`-analog surface the paper
/// collects as provenance (timeouts, heartbeat intervals, communication
/// settings, §III-E1); [`SimConfig::from_json`] loads one from a config
/// document and [`SimConfig::to_json`] archives it.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SimConfig {
    pub campaign_seed: u64,
    pub run: RunId,
    /// Worker nodes requested (scheduler/client live on an extra node).
    pub worker_nodes: u32,
    pub wms: WmsConfig,
    pub scheduler: SchedulerConfig,
    pub dxt: DxtConfig,
    pub network: NetworkConfig,
    pub pfs: PfsConfig,
    /// Background interference on PFS and network (off for ablations).
    pub interference: bool,
    /// Log-scale sigma of per-task compute jitter.
    pub compute_jitter_sigma: f64,
    /// Work-stealing rebalance period.
    pub steal_interval: Dur,
    /// Heartbeat period and fault-detection timeout.
    pub heartbeat_interval: Dur,
    pub heartbeat_timeout: Dur,
    /// Kill worker ordinal `.0` at time `.1` (failure injection).
    pub worker_death: Option<(u32, Time)>,
    /// Mofka producer batch size (ablation knob).
    pub mofka_batch: usize,
    /// Stream every Darshan record into the Mofka `io-records` topic at
    /// record time (the paper's future-work "fully online system"). Online
    /// records bypass DXT buffer limits.
    pub online_darshan: bool,
    /// Fault schedule applied to this run (chaos testing). The default
    /// (empty) schedule perturbs nothing, so old config documents parse
    /// unchanged and run identically.
    #[serde(default = "Default::default")]
    pub faults: FaultSchedule,
    /// Evaluate the scheduler's structural invariants after every event and
    /// fail the run on the first violation (chaos testing; off by default —
    /// the check scans the whole task table).
    #[serde(default = "Default::default")]
    pub invariant_checks: bool,
    /// Root directory for durable Mofka state (dtf-store backed). `None`
    /// (the default) keeps the run in-memory, exactly as before; set, the
    /// run's event stream and archive metadata survive the process and
    /// can be reopened with `RunData::open_archive`.
    #[serde(default = "Default::default")]
    pub persist_dir: Option<String>,
    /// Out-of-band proxy data plane for large task outputs. Disabled by
    /// default; enabling it never changes the schedule — only byte
    /// attribution (in-band refs vs out-of-band payloads) and the
    /// provenance stream gain records.
    #[serde(default = "Default::default")]
    pub proxy: ProxyConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            campaign_seed: 0,
            run: RunId(0),
            worker_nodes: 2,
            wms: WmsConfig::default(),
            scheduler: SchedulerConfig::default(),
            dxt: DxtConfig::default(),
            network: NetworkConfig::default(),
            pfs: PfsConfig::default(),
            interference: true,
            compute_jitter_sigma: 0.08,
            steal_interval: Dur::from_millis_f64(100.0),
            heartbeat_interval: Dur::from_millis_f64(500.0),
            heartbeat_timeout: Dur::from_secs_f64(3.0),
            worker_death: None,
            mofka_batch: 64,
            online_darshan: false,
            faults: FaultSchedule::default(),
            invariant_checks: false,
            persist_dir: None,
            proxy: ProxyConfig::default(),
        }
    }
}

impl SimConfig {
    /// Parse a configuration document (JSON).
    pub fn from_json(json: &str) -> Result<Self> {
        Ok(serde_json::from_str(json)?)
    }

    /// Archive the configuration (pretty JSON).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }
}

#[derive(Debug)]
enum Ev {
    Submit(usize),
    FetchDone {
        dep: TaskKey,
        from: WorkerId,
        to: WorkerId,
        nbytes: u64,
        start: Time,
    },
    TaskDone {
        key: TaskKey,
        worker: usize,
        slot: usize,
        start: Time,
        nbytes: u64,
    },
    Rebalance,
    Heartbeat {
        worker: usize,
    },
    FaultCheck,
    Kill {
        worker: usize,
    },
    MofkaStall {
        topic: String,
        partition: u32,
    },
    MofkaUnstall {
        topic: String,
        partition: u32,
    },
    /// Deferred proxy resolution (slow-resolver fault): the transfer
    /// finished earlier but the payload materializes only now.
    ProxyResolve {
        dep: TaskKey,
        to: WorkerId,
    },
}

struct Queued {
    time: Time,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The simulated cluster. Build once per run; call [`Self::run`].
///
/// ```
/// use dtf_wms::sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
/// use dtf_wms::{GraphBuilder, SimAction};
/// use dtf_core::ids::GraphId;
/// use dtf_core::time::Dur;
///
/// let mut b = GraphBuilder::new(GraphId(0));
/// let tok = b.new_token();
/// let root = b.add_sim("load", tok, 0, vec![],
///     SimAction::compute_only(Dur::from_millis_f64(10.0), 1024));
/// b.add_sim("use", tok, 1, vec![root],
///     SimAction::compute_only(Dur::from_millis_f64(5.0), 64));
/// let workflow = SimWorkflow {
///     name: "doc".into(),
///     graphs: vec![b.build(&Default::default()).unwrap()],
///     submit: SubmitPolicy::AllAtOnce,
///     startup: Dur::from_secs_f64(0.1),
///     inter_graph: Dur::ZERO,
///     shutdown: Dur::ZERO,
///     dataset: vec![],
/// };
/// let data = SimCluster::new(SimConfig::default()).unwrap().run(workflow).unwrap();
/// assert_eq!(data.distinct_tasks(), 2);
/// ```
pub struct SimCluster {
    cfg: SimConfig,
    topo: ClusterTopology,
    job: dtf_core::provenance::JobInfo,
    worker_ids: Vec<WorkerId>,
    /// Worker id → index in `worker_ids` (the per-event lookup).
    widx_of: HashMap<WorkerId, usize>,
    scheduler: Scheduler,
    net: NetworkModel,
    io: Vec<InstrumentedPfs>,
    runtimes: Vec<Arc<DarshanRuntime>>,
    mofka: MofkaService,
    ssg: SsgGroup,
    // RNG streams
    rng_io: SmallRng,
    rng_net: SmallRng,
    rng_compute: SmallRng,
    rng_stall: SmallRng,
    // event queue
    queue: BinaryHeap<Reverse<Queued>>,
    seq: u64,
    now: Time,
    /// Dependency transfers issued so far, in issue order — the index the
    /// fault schedule's fetch faults key on.
    fetch_seq: u64,
    /// Out-of-band data plane (no-op when disabled).
    proxy: ProxyPlane,
    /// Proxy resolutions attempted so far, in attempt order — the index
    /// the fault schedule's slow-resolve faults key on.
    proxy_resolve_seq: u64,
    // per-worker thread slots (None = free)
    slots: Vec<Vec<Option<TaskKey>>>,
    dead: Vec<bool>,
    last_done: Time,
    compute_jitter: Jitter,
    stall_dur: LogNormal,
}

impl SimCluster {
    /// Allocate a cluster and wire all services for one run.
    pub fn new(cfg: SimConfig) -> Result<Self> {
        let rr = RunRng::new(cfg.campaign_seed, cfg.run);
        let mut rng_topo = rr.stream("topology");
        let topo = ClusterTopology::polaris_like(&mut rng_topo);
        let mut js = JobScheduler::new(AllocPolicy::default());
        let req = JobRequest {
            nodes: cfg.worker_nodes + 1,
            walltime_limit_s: 3600,
            queue: "prod".into(),
        };
        let mut rng_alloc = rr.stream("alloc");
        let job = js.allocate(&topo, &req, Time::ZERO, &mut rng_alloc)?;

        // node 0 of the allocation hosts scheduler+client; the rest host
        // workers
        let mut worker_ids = Vec::new();
        for node in job.allocated_nodes.iter().skip(1) {
            for slot in 0..cfg.wms.workers_per_node {
                worker_ids.push(WorkerId::new(*node, slot));
            }
        }

        let interference_seed = rr.stream("interference").gen::<u64>();
        let mut pfs_load = if cfg.interference {
            LoadProcess::pfs_default(interference_seed)
        } else {
            LoadProcess::none(interference_seed)
        };
        if !cfg.faults.pfs_bursts.is_empty() {
            pfs_load = pfs_load.with_forced_bursts(
                cfg.faults.pfs_bursts.iter().map(|b| (b.start, b.stop, b.factor)).collect(),
            );
        }
        let net_load = if cfg.interference {
            LoadProcess::network_default(interference_seed ^ 0x5a5a)
        } else {
            LoadProcess::none(interference_seed)
        };
        let pfs = Arc::new(Mutex::new(Pfs::new(cfg.pfs.clone(), pfs_load)));
        let net = NetworkModel::new(cfg.network.clone(), net_load);

        let mut runtimes = Vec::new();
        let mut io = Vec::new();
        for w in &worker_ids {
            let rt = Arc::new(DarshanRuntime::new(*w, cfg.dxt));
            io.push(InstrumentedPfs::new(pfs.clone(), rt.clone()));
            runtimes.push(rt);
        }

        // Simulated runs always take the virtual-time (deterministic)
        // data plane; the concurrent shard plane is for real-time
        // service mode only.
        let svc_cfg = dtf_mofka::ServiceConfig {
            persist: cfg.persist_dir.as_ref().map(std::path::PathBuf::from),
            mode: dtf_mofka::ServiceMode::VirtualTime,
        };
        let mofka = BedrockConfig::wms_default().bootstrap_with(&svc_cfg)?;
        if cfg.online_darshan {
            // fully online system: every I/O record streams straight into
            // Mofka as it is captured, independent of the DXT buffers. Each
            // emitter owns its producer (the sink is FnMut behind the
            // runtime's own lock), so records go typed into the batch buffer
            // with no JSON rendering and no extra mutex on the I/O path.
            for rt in &runtimes {
                let mut producer = mofka.producer(
                    "io-records",
                    ProducerConfig { batch_size: cfg.mofka_batch.max(1), ..Default::default() },
                )?;
                rt.set_sink(Box::new(move |rec| {
                    let _ = producer.push(dtf_mofka::Event::typed(rec.clone()));
                }));
            }
        }
        let mut plugins = PluginSet::new();
        plugins.register(Box::new(MofkaPlugin::new(
            &mofka,
            ProducerConfig { batch_size: cfg.mofka_batch.max(1), ..Default::default() },
        )?));
        // skewed-placement fault injection rides through the scheduler's
        // own config surface
        let mut sched_cfg = cfg.scheduler.clone();
        if sched_cfg.hotspot.is_none() {
            sched_cfg.hotspot = cfg.faults.hotspot;
        }
        let mut scheduler = Scheduler::new(sched_cfg, plugins);
        for w in &worker_ids {
            scheduler.add_worker(*w, cfg.wms.threads_per_worker);
        }

        let slots =
            worker_ids.iter().map(|_| vec![None; cfg.wms.threads_per_worker as usize]).collect();
        let n_workers = worker_ids.len();
        let compute_jitter = if cfg.compute_jitter_sigma > 0.0 {
            Jitter::new(cfg.compute_jitter_sigma, 3.0)
        } else {
            Jitter::none()
        };
        let widx_of = worker_ids.iter().enumerate().map(|(i, w)| (*w, i)).collect();
        let proxy = ProxyPlane::new(cfg.proxy.clone());
        Ok(Self {
            ssg: SsgGroup::new("dask-workers", cfg.heartbeat_timeout),
            rng_io: rr.stream("io"),
            rng_net: rr.stream("net"),
            rng_compute: rr.stream("compute"),
            rng_stall: rr.stream("stall"),
            cfg,
            topo,
            job,
            worker_ids,
            widx_of,
            scheduler,
            net,
            io,
            runtimes,
            mofka,
            queue: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            fetch_seq: 0,
            proxy,
            proxy_resolve_seq: 0,
            slots,
            dead: vec![false; n_workers],
            last_done: Time::ZERO,
            compute_jitter,
            stall_dur: LogNormal::new(-0.2, 0.6), // median ~0.8 s stalls
        })
    }

    pub fn job(&self) -> &dtf_core::provenance::JobInfo {
        &self.job
    }

    pub fn worker_ids(&self) -> &[WorkerId] {
        &self.worker_ids
    }

    fn push(&mut self, time: Time, ev: Ev) {
        debug_assert!(time >= self.now, "event scheduled in the past");
        self.seq += 1;
        self.queue.push(Reverse(Queued { time, seq: self.seq, ev }));
    }

    fn log(&mut self, level: LogLevel, source: LogSource, message: String) {
        let entry = LogEntry { time: self.now, level, source, message };
        self.scheduler.plugins_mut().on_log(&entry);
    }

    /// Execute one complete workflow run.
    pub fn run(mut self, workflow: SimWorkflow) -> Result<RunData> {
        // create the dataset; FileIds are sequential
        {
            let mut pfs = self.io[0].pfs().lock();
            for (path, size, stripes) in &workflow.dataset {
                pfs.create(path.clone(), *size, *stripes);
            }
        }
        self.log(LogLevel::Info, LogSource::Scheduler, "scheduler started".into());

        // workers connect, staggered through the startup window
        let startup = workflow.startup;
        for i in 0..self.worker_ids.len() {
            let frac = 0.3 + 0.6 * (i as f64 / self.worker_ids.len().max(1) as f64);
            let t = Time::ZERO + startup.scale(frac);
            let addr = self.worker_ids[i].address();
            self.ssg.join(addr, t);
            self.push(t + self.cfg.heartbeat_interval, Ev::Heartbeat { worker: i });
        }
        self.push(Time::ZERO + startup, Ev::Submit(0));
        self.push(Time::ZERO + startup, Ev::Rebalance);
        self.push(Time::ZERO + startup, Ev::FaultCheck);
        if let Some((w, t)) = self.cfg.worker_death {
            self.push(t, Ev::Kill { worker: w as usize });
        }
        // the fault schedule's perturbations all become ordinary queue
        // events, so they replay under the same virtual clock as the run
        let faults = self.cfg.faults.clone();
        for d in &faults.deaths {
            self.push(d.time, Ev::Kill { worker: d.worker as usize });
        }
        for s in &faults.mofka_stalls {
            self.push(s.start, Ev::MofkaStall { topic: s.topic.clone(), partition: s.partition });
            self.push(s.stop, Ev::MofkaUnstall { topic: s.topic.clone(), partition: s.partition });
        }

        // graph bookkeeping for sequential submission
        let mut remaining: Vec<usize> = workflow.graphs.iter().map(|g| g.len()).collect();
        let mut graphs: Vec<Option<TaskGraph>> = workflow.graphs.into_iter().map(Some).collect();
        let total_graphs = graphs.len();
        let mut submitted = 0usize;
        let mut tasks_outstanding: usize = 0;
        // tasks that completed at least once: a recomputed task (its output
        // lost to a worker death) completes a second time, which must not
        // decrement `tasks_outstanding` again — the periodic loops
        // (heartbeats, fault checks, rebalance) key their liveness on it,
        // and an early zero would strand unrecovered work
        let mut completed_once: std::collections::HashSet<TaskKey> = Default::default();

        while let Some(Reverse(q)) = self.queue.pop() {
            self.now = q.time;
            match q.ev {
                Ev::Submit(idx) => {
                    let Some(graph) = graphs.get_mut(idx).and_then(Option::take) else {
                        continue;
                    };
                    let gid = graph.id;
                    tasks_outstanding += graph.len();
                    self.log(
                        LogLevel::Info,
                        LogSource::Client(ClientId(0)),
                        format!("submitting graph {gid} ({} tasks)", graph.len()),
                    );
                    let was_empty = remaining.get(idx).copied() == Some(0);
                    let actions = self.scheduler.submit_graph(graph, self.now)?;
                    self.process_actions(actions);
                    submitted += 1;
                    if submitted < total_graphs
                        && (workflow.submit == SubmitPolicy::AllAtOnce || was_empty)
                    {
                        self.push(self.now, Ev::Submit(submitted));
                    }
                    self.try_start_all();
                }
                Ev::FetchDone { dep, from, to, nbytes, start } => {
                    let widx = self.worker_index(to);
                    if self.dead[widx] || self.dead[self.worker_index(from)] {
                        // destination gone, or the source died mid-transfer
                        // (the scheduler re-issued it from a live replica)
                        continue;
                    }
                    self.scheduler.plugins_mut().on_comm(&CommEvent {
                        key: dep.clone(),
                        from,
                        to,
                        nbytes,
                        start,
                        stop: self.now,
                    });
                    // proxied dependency: the transfer moved out-of-band;
                    // the payload must resolve before the dependent can use
                    // it. A slow-resolver fault defers both the resolution
                    // and the readiness signal.
                    if self.proxy.proxy_ref(&dep).is_some() {
                        let ridx = self.proxy_resolve_seq;
                        self.proxy_resolve_seq += 1;
                        if let Some(f) = self.cfg.faults.slow_resolve(ridx).copied() {
                            self.push(self.now + f.extra_delay, Ev::ProxyResolve { dep, to });
                            continue;
                        }
                        self.resolve_proxy(&dep, to);
                    }
                    self.scheduler.fetch_done(&dep, to, self.now);
                    self.try_start_all();
                }
                Ev::ProxyResolve { dep, to } => {
                    if self.dead[self.worker_index(to)] {
                        continue;
                    }
                    self.resolve_proxy(&dep, to);
                    self.scheduler.fetch_done(&dep, to, self.now);
                    self.try_start_all();
                }
                Ev::TaskDone { key, worker, slot, start, nbytes } => {
                    if self.dead[worker] {
                        continue; // worker died mid-task; scheduler re-planned
                    }
                    debug_assert_eq!(self.slots[worker][slot].as_ref(), Some(&key));
                    self.slots[worker][slot] = None;
                    let wid = self.worker_ids[worker];
                    let thread = ThreadId::synth(wid, slot as u32);
                    let actions =
                        self.scheduler.task_finished(&key, wid, thread, start, self.now, nbytes);
                    // outputs crossing the threshold publish to the proxy
                    // plane before any dependent fetch completes
                    if self.proxy.should_proxy(nbytes) {
                        let graph =
                            self.scheduler.task_graph(&key).unwrap_or(dtf_core::ids::GraphId(0));
                        let pidx = self.proxy.publish_count();
                        let (_r, ev) = self.proxy.publish(&key, graph, wid, nbytes, self.now);
                        self.scheduler.plugins_mut().on_proxy(&ev);
                        if self.cfg.faults.dangling_proxy(pidx) {
                            self.proxy.damage(&key);
                        }
                    }
                    self.process_actions(actions);
                    self.last_done = self.now;
                    if completed_once.insert(key.clone()) {
                        tasks_outstanding = tasks_outstanding.saturating_sub(1);
                        // sequential submission: next graph when this one
                        // drains (graph ids are dense 0..n in workflow graphs)
                        if let Some(gid) = self.graph_of_done(&key) {
                            if let Some(r) = remaining.get_mut(gid as usize) {
                                *r = r.saturating_sub(1);
                                if *r == 0
                                    && workflow.submit == SubmitPolicy::Sequential
                                    && submitted < total_graphs
                                {
                                    self.push(
                                        self.now + workflow.inter_graph,
                                        Ev::Submit(submitted),
                                    );
                                }
                            }
                        }
                    }
                    self.try_start_all();
                }
                Ev::Rebalance => {
                    let actions = self.scheduler.rebalance(self.now);
                    self.process_actions(actions);
                    self.try_start_all();
                    if tasks_outstanding > 0 || submitted < total_graphs {
                        let t = self.now + self.cfg.steal_interval;
                        self.push(t, Ev::Rebalance);
                    }
                }
                Ev::Heartbeat { worker } => {
                    if self.dead[worker] {
                        continue;
                    }
                    // a suppression window swallows the beat but the worker
                    // keeps its schedule — the "stalled event loop" fault:
                    // the process is healthy yet looks dead to SSG
                    if !self.cfg.faults.heartbeat_dropped(worker as u32, self.now) {
                        let addr = self.worker_ids[worker].address();
                        self.ssg.heartbeat(&addr, self.now);
                    }
                    if tasks_outstanding > 0 || submitted < total_graphs {
                        let t = self.now + self.cfg.heartbeat_interval;
                        self.push(t, Ev::Heartbeat { worker });
                    }
                }
                Ev::FaultCheck => {
                    for addr in self.ssg.evict_suspects(self.now) {
                        if let Some(widx) = self.worker_ids.iter().position(|w| w.address() == addr)
                        {
                            self.log(
                                LogLevel::Warning,
                                LogSource::Scheduler,
                                format!("worker {addr} lost (missed heartbeats)"),
                            );
                            // fence the evicted worker: even if its process
                            // is actually healthy (heartbeat suppression),
                            // the scheduler has re-planned its work, so any
                            // completion it still delivers must be ignored
                            // (we do not model reconnection)
                            self.dead[widx] = true;
                            // free its slots
                            for s in self.slots[widx].iter_mut() {
                                *s = None;
                            }
                            let wid = self.worker_ids[widx];
                            let actions = self.scheduler.worker_died(wid, self.now);
                            // re-source or orphan the proxies the dead
                            // worker owned
                            for ev in self.proxy.worker_died(wid, self.now) {
                                self.scheduler.plugins_mut().on_proxy(&ev);
                            }
                            self.process_actions(actions);
                        }
                    }
                    self.try_start_all();
                    if tasks_outstanding > 0 || submitted < total_graphs {
                        let t = self.now + self.cfg.heartbeat_timeout.scale(0.5);
                        self.push(t, Ev::FaultCheck);
                    }
                }
                Ev::Kill { worker } => {
                    if worker < self.dead.len() {
                        self.dead[worker] = true;
                        let addr = self.worker_ids[worker].address();
                        self.log(
                            LogLevel::Error,
                            LogSource::Worker(self.worker_ids[worker]),
                            format!("worker {addr} terminated"),
                        );
                        // it stops heartbeating; FaultCheck will evict it
                    }
                }
                Ev::MofkaStall { topic, partition } => {
                    // stall injection: appends to the partition stage
                    // invisibly until the matching unstall
                    let _ = self.mofka.stall_partition(&topic, partition);
                }
                Ev::MofkaUnstall { topic, partition } => {
                    let _ = self.mofka.unstall_partition(&topic, partition);
                }
            }
            if tasks_outstanding > 0 && self.dead.iter().all(|d| *d) {
                return Err(DtfError::IllegalState(
                    "fault schedule killed every worker with tasks outstanding".into(),
                ));
            }
            if self.cfg.invariant_checks {
                let violations = self.scheduler.invariant_violations();
                if !violations.is_empty() {
                    return Err(DtfError::IllegalState(format!(
                        "scheduler invariant violated at {}: {}",
                        self.now,
                        violations.join("; ")
                    )));
                }
            }
        }

        if self.scheduler.unfinished() > 0 {
            return Err(DtfError::IllegalState(format!(
                "simulation deadlocked with {} unfinished tasks",
                self.scheduler.unfinished()
            )));
        }

        let wall_time = (self.last_done + workflow.shutdown) - Time::ZERO;
        self.finalize(workflow.name, wall_time)
    }

    /// Graph id of a just-finished task (scheduler holds the mapping).
    fn graph_of_done(&self, key: &TaskKey) -> Option<u32> {
        // the task is in Memory now; the scheduler keeps its record
        self.scheduler.task_graph(key).map(|g| g.0)
    }

    fn worker_index(&self, id: WorkerId) -> usize {
        *self.widx_of.get(&id).expect("known worker")
    }

    fn process_actions(&mut self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Fetch { dep, from, to, nbytes } => {
                    let (mut dur, _first) = self.net.transfer_time(
                        &self.topo,
                        hash_addr(from),
                        from.node,
                        hash_addr(to),
                        to.node,
                        nbytes,
                        self.now,
                        &mut self.rng_net,
                    );
                    // fetch faults key on issue order: delay stretches the
                    // transfer, duplicate replays its completion (which the
                    // scheduler must absorb as a no-op)
                    let fault = self.cfg.faults.fetch_fault(self.fetch_seq).copied();
                    self.fetch_seq += 1;
                    if let Some(f) = &fault {
                        dur += f.extra_delay;
                    }
                    let start = self.now;
                    let done = self.now + dur;
                    self.push(done, Ev::FetchDone { dep: dep.clone(), from, to, nbytes, start });
                    if fault.map(|f| f.duplicate).unwrap_or(false) {
                        self.push(done, Ev::FetchDone { dep, from, to, nbytes, start });
                    }
                }
            }
        }
    }

    /// Resolve a proxied dependency for `to` and emit the plane's
    /// lifecycle records. A plane-level failure (dangling blob whose owner
    /// died) is surfaced as a log warning — by then the scheduler has
    /// already re-planned the data via recompute, so the run proceeds.
    fn resolve_proxy(&mut self, dep: &TaskKey, to: WorkerId) {
        match self.proxy.resolve(dep, to, self.now) {
            Ok((_outcome, events)) => {
                for ev in events {
                    self.scheduler.plugins_mut().on_proxy(&ev);
                }
            }
            Err(e) => {
                self.log(
                    LogLevel::Warning,
                    LogSource::Scheduler,
                    format!("proxy resolution failed: {e}"),
                );
            }
        }
    }

    /// Start every startable task on every live worker.
    fn try_start_all(&mut self) {
        for widx in 0..self.worker_ids.len() {
            if self.dead[widx] {
                continue;
            }
            let wid = self.worker_ids[widx];
            while let Some(key) = self.scheduler.try_start(wid, self.now) {
                let slot = self.slots[widx]
                    .iter()
                    .position(|s| s.is_none())
                    .expect("scheduler respects thread limit");
                self.slots[widx][slot] = Some(key.clone());
                self.execute(key, widx, slot);
            }
        }
    }

    /// Charge a task's full cost model and schedule its completion.
    fn execute(&mut self, key: TaskKey, widx: usize, slot: usize) {
        let action = match self.scheduler.payload(&key) {
            Some(Payload::Sim(a)) => a.clone(),
            Some(Payload::Real(_)) => {
                // real payloads cannot run under virtual time; model them as
                // zero-cost so mixed graphs still complete
                SimAction::compute_only(Dur::ZERO, 0)
            }
            None => SimAction::compute_only(Dur::ZERO, 0),
        };
        let start = self.now;
        let wid = self.worker_ids[widx];
        let thread = ThreadId::synth(wid, slot as u32);

        // --- in-task I/O, sequential from task start
        let mut elapsed = Dur::ZERO;
        let mut opened: Vec<dtf_core::ids::FileId> = Vec::new();
        for call in &action.io {
            let at = start + elapsed;
            if !opened.contains(&call.file) {
                if let Ok(d) = self.io[widx].open(thread, call.file, at, &mut self.rng_io) {
                    elapsed += d;
                    opened.push(call.file);
                }
            }
            let at = start + elapsed;
            let res = if call.write {
                self.io[widx].write(thread, call.file, call.offset, call.size, at, &mut self.rng_io)
            } else {
                self.io[widx].read(thread, call.file, call.offset, call.size, at, &mut self.rng_io)
            };
            match res {
                Ok(d) => elapsed += d,
                Err(e) => {
                    // surface workload bugs loudly: an I/O error in the cost
                    // model is a generator bug, not a runtime condition
                    panic!("simulated I/O failed for {key}: {e}");
                }
            }
        }
        for file in opened {
            let at = start + elapsed;
            if let Ok(d) = self.io[widx].close(thread, file, at, &mut self.rng_io) {
                elapsed += d;
            }
        }

        // --- compute, scaled by node profile, jitter, and any straggler
        // windows covering the task start (the jitter draw always happens,
        // keeping the RNG stream identical with and without fault schedules)
        let profile = self.topo.profile(wid.node);
        let jitter = self.compute_jitter.factor(&mut self.rng_compute);
        let straggle = self.cfg.faults.straggler_factor(widx as u32, start);
        let compute = action.compute.scale(profile.compute_factor).scale(jitter).scale(straggle);
        elapsed += compute;

        // --- event-loop / GC stalls (Fig. 7 warning model)
        if action.stall_rate > 0.0 {
            let exec_secs = elapsed.as_secs_f64();
            let gap = Exponential::new(action.stall_rate);
            let mut t = gap.sample(&mut self.rng_stall);
            let mut stall_total = Dur::ZERO;
            while t < exec_secs {
                let dur = Dur::from_secs_f64(self.stall_dur.sample(&mut self.rng_stall));
                let kind = if self.rng_stall.gen::<f64>() < 0.7 {
                    WarningKind::UnresponsiveEventLoop
                } else {
                    WarningKind::GcPause
                };
                let warn = WarningEvent {
                    kind,
                    worker: Some(wid),
                    time: start + Dur::from_secs_f64(t),
                    duration: dur,
                };
                self.scheduler.plugins_mut().on_warning(&warn);
                self.log(
                    LogLevel::Warning,
                    LogSource::Worker(wid),
                    format!("event loop unresponsive for {dur}"),
                );
                stall_total += dur;
                t += gap.sample(&mut self.rng_stall);
            }
            elapsed += stall_total;
        }

        let nbytes = action.output_nbytes;
        self.push(start + elapsed, Ev::TaskDone { key, worker: widx, slot, start, nbytes });
    }

    /// Finalize Darshan logs and drain Mofka into the run record.
    fn finalize(mut self, workflow: String, wall_time: Dur) -> Result<RunData> {
        self.scheduler.plugins_mut().flush();
        for rt in &self.runtimes {
            rt.clear_sink(); // drops (and thereby flushes) online producers
        }
        // stalls whose windows outlived the run must not hide events from
        // the post-run drain
        self.mofka.unstall_all();
        let logs: Vec<_> =
            self.runtimes.iter().map(|rt| rt.finalize(self.cfg.run, self.job.job_id)).collect();
        let darshan = LogSet::new(logs);
        let chart = dtf_platform::sysprov::capture_chart(
            &self.topo,
            self.job.clone(),
            self.cfg.wms.clone(),
            &workflow,
            self.cfg.campaign_seed,
        );
        let start_order = self.scheduler.start_order().to_vec();
        let steals = self.scheduler.steal_count();
        let meta = ArchiveMeta {
            run: self.cfg.run,
            workflow,
            chart,
            darshan,
            wall_time,
            start_order,
            steals,
        };
        if self.cfg.persist_dir.is_some() {
            // archive the non-Mofka half of the run record, then group-
            // commit everything: past this point the run is recoverable
            self.mofka
                .yokan()
                .put(ARCHIVE_META_KEY, serde_json::to_vec(&meta).expect("meta serializes"));
            self.mofka.sync()?;
        }
        let ArchiveMeta { run, workflow, chart, darshan, wall_time, start_order, steals } = meta;
        RunData::drain_from_mofka(
            &self.mofka,
            run,
            workflow,
            chart,
            darshan,
            wall_time,
            start_order,
            steals,
        )
    }
}

fn hash_addr(w: WorkerId) -> u64 {
    (w.node.0 as u64) << 32 | w.slot as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, IoCall};
    use dtf_core::ids::{FileId, GraphId};
    use std::collections::HashSet;

    fn small_workflow(io: bool) -> SimWorkflow {
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        let mut roots = Vec::new();
        for i in 0..8 {
            let action = SimAction {
                compute: Dur::from_millis_f64(50.0),
                io: if io {
                    vec![IoCall::read(FileId(0), (i as u64) * (4 << 20), 4 << 20)]
                } else {
                    vec![]
                },
                output_nbytes: 1 << 20,
                stall_rate: 0.0,
            };
            roots.push(b.add_sim("load", tok, i, vec![], action));
        }
        let mut b2 = b;
        for (i, r) in roots.iter().enumerate() {
            b2.add_sim(
                "reduce",
                tok + 1,
                i as u32,
                vec![r.clone()],
                SimAction::compute_only(Dur::from_millis_f64(20.0), 100),
            );
        }
        SimWorkflow {
            name: "unit".into(),
            graphs: vec![b2.build(&HashSet::new()).unwrap()],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(2.0),
            inter_graph: Dur::ZERO,
            shutdown: Dur::from_secs_f64(1.0),
            dataset: vec![("/data/input.bin".into(), 64 << 20, 4)],
        }
    }

    #[test]
    fn small_workflow_completes_with_all_events() {
        let sim = SimCluster::new(SimConfig::default()).unwrap();
        let data = sim.run(small_workflow(true)).unwrap();
        assert_eq!(data.distinct_tasks(), 16);
        assert_eq!(data.task_done.len(), 16);
        // 8 reads traced with thread ids
        assert_eq!(data.io_ops(), 8);
        assert!(data.darshan.all_records().all(|r| r.thread.0 != 0));
        // wall time includes startup + shutdown
        assert!(data.wall_time > Dur::from_secs_f64(3.0));
        // transitions are time-sorted and legal
        for w in data.transitions.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert_eq!(data.task_graphs(), 1);
    }

    #[test]
    fn same_seed_same_run_is_reproducible() {
        let cfg = SimConfig { campaign_seed: 7, run: RunId(3), ..Default::default() };
        let a = SimCluster::new(cfg.clone()).unwrap().run(small_workflow(true)).unwrap();
        let b = SimCluster::new(cfg).unwrap().run(small_workflow(true)).unwrap();
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.comms.len(), b.comms.len());
        let oa: Vec<_> = a.start_order.iter().map(|(k, _)| k.clone()).collect();
        let ob: Vec<_> = b.start_order.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(oa, ob, "identical schedule for identical seed");
    }

    #[test]
    fn different_runs_vary() {
        let a =
            SimCluster::new(SimConfig { campaign_seed: 7, run: RunId(0), ..Default::default() })
                .unwrap()
                .run(small_workflow(true))
                .unwrap();
        let b =
            SimCluster::new(SimConfig { campaign_seed: 7, run: RunId(1), ..Default::default() })
                .unwrap()
                .run(small_workflow(true))
                .unwrap();
        assert_ne!(a.wall_time, b.wall_time, "runs should exhibit variability");
    }

    #[test]
    fn dependencies_never_violated() {
        let sim = SimCluster::new(SimConfig::default()).unwrap();
        let data = sim.run(small_workflow(false)).unwrap();
        // reduce-i must start after load-i finished
        let mut finish: std::collections::HashMap<TaskKey, Time> = Default::default();
        for d in &data.task_done {
            finish.insert(d.key.clone(), d.stop);
        }
        for d in &data.task_done {
            if d.key.prefix == "reduce" {
                let dep = data
                    .task_done
                    .iter()
                    .find(|x| x.key.prefix == "load" && x.key.index == d.key.index)
                    .unwrap();
                assert!(d.start >= dep.stop, "reduce started before its load finished");
            }
        }
    }

    #[test]
    fn worker_death_mid_run_still_completes() {
        // long tasks so the kill lands mid-execution and fault detection
        // (heartbeat timeout) has to recover the work
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        for i in 0..80 {
            b.add_sim(
                "slow",
                tok,
                i,
                vec![],
                SimAction::compute_only(Dur::from_secs_f64(4.0), 100),
            );
        }
        let wf = SimWorkflow {
            name: "death".into(),
            graphs: vec![b.build(&HashSet::new()).unwrap()],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(2.0),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![],
        };
        let cfg =
            SimConfig { worker_death: Some((0, Time::from_secs_f64(2.5))), ..Default::default() };
        let sim = SimCluster::new(cfg).unwrap();
        let data = sim.run(wf).unwrap();
        assert_eq!(data.distinct_tasks(), 80);
        // the lost-worker warning shows up in the logs
        assert!(data.logs.iter().any(|l| l.message.contains("lost")));
        // tasks dispatched to the dead worker were re-run elsewhere
        let dead_worker = data.chart.job.allocated_nodes[1];
        let late_on_dead = data
            .task_done
            .iter()
            .filter(|d| d.worker == WorkerId::new(dead_worker, 0))
            .filter(|d| d.stop > Time::from_secs_f64(2.5))
            .count();
        assert_eq!(late_on_dead, 0, "no completions on the dead worker after the kill");
    }

    #[test]
    fn stall_rate_produces_warnings() {
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        b.add_sim(
            "read_parquet-fused-assign",
            tok,
            0,
            vec![],
            SimAction {
                compute: Dur::from_secs_f64(30.0),
                io: vec![],
                output_nbytes: 300 << 20,
                stall_rate: 0.5,
            },
        );
        let wf = SimWorkflow {
            name: "stalls".into(),
            graphs: vec![b.build(&HashSet::new()).unwrap()],
            submit: SubmitPolicy::AllAtOnce,
            startup: Dur::from_secs_f64(1.0),
            inter_graph: Dur::ZERO,
            shutdown: Dur::ZERO,
            dataset: vec![],
        };
        let data = SimCluster::new(SimConfig::default()).unwrap().run(wf).unwrap();
        assert!(!data.warnings.is_empty(), "long stall-prone task should warn");
        // warnings fall within the run window
        for w in &data.warnings {
            assert!(w.time.as_secs_f64() >= 1.0);
        }
    }

    #[test]
    fn proxy_plane_is_schedule_neutral() {
        // enabling the out-of-band plane must not move a single event:
        // same wall time, same start order, same transfers — only the
        // proxy lifecycle stream appears
        let off_cfg = SimConfig { campaign_seed: 11, run: RunId(2), ..Default::default() };
        let mut on_cfg = off_cfg.clone();
        on_cfg.proxy =
            ProxyConfig { enabled: true, threshold: 1 << 18, resolver_cache_bytes: 8 << 20 };
        let off = SimCluster::new(off_cfg).unwrap().run(small_workflow(true)).unwrap();
        let on = SimCluster::new(on_cfg).unwrap().run(small_workflow(true)).unwrap();
        assert_eq!(off.wall_time, on.wall_time);
        assert_eq!(off.start_order, on.start_order);
        assert_eq!(
            serde_json::to_string(&off.comms).unwrap(),
            serde_json::to_string(&on.comms).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&off.transitions).unwrap(),
            serde_json::to_string(&on.transitions).unwrap()
        );
        assert!(off.proxies.is_empty(), "disabled plane must stay silent");
        // the 1 MiB load outputs crossed the 256 KiB threshold
        use dtf_core::events::ProxyAction;
        assert!(on.proxies.iter().any(|p| p.action == ProxyAction::Published));
        assert!(
            on.proxies.iter().all(|p| p.key.prefix == "load"),
            "only above-threshold outputs publish"
        );
    }

    #[test]
    fn config_roundtrips_through_json() {
        let mut cfg = SimConfig {
            worker_nodes: 4,
            mofka_batch: 7,
            online_darshan: true,
            ..Default::default()
        };
        cfg.scheduler.work_stealing = false;
        let json = cfg.to_json();
        let back = SimConfig::from_json(&json).unwrap();
        assert_eq!(back.worker_nodes, 4);
        assert!(!back.scheduler.work_stealing);
        assert_eq!(back.mofka_batch, 7);
        assert!(back.online_darshan);
        assert!(SimConfig::from_json("not json").is_err());
    }

    #[test]
    fn sequential_graphs_submit_in_order() {
        let mut graphs = Vec::new();
        let mut ext = HashSet::new();
        for g in 0..3 {
            let mut b = GraphBuilder::new(GraphId(g));
            let tok = b.new_token();
            for i in 0..4 {
                b.add_sim(
                    "step",
                    tok,
                    i,
                    vec![],
                    SimAction::compute_only(Dur::from_millis_f64(10.0), 10),
                );
            }
            let built = b.build(&ext).unwrap();
            for t in &built.tasks {
                ext.insert(t.key.clone());
            }
            graphs.push(built);
        }
        let wf = SimWorkflow {
            name: "seq".into(),
            graphs,
            submit: SubmitPolicy::Sequential,
            startup: Dur::from_secs_f64(1.0),
            inter_graph: Dur::from_secs_f64(0.5),
            shutdown: Dur::ZERO,
            dataset: vec![],
        };
        let data = SimCluster::new(SimConfig::default()).unwrap().run(wf).unwrap();
        assert_eq!(data.task_graphs(), 3);
        // graph 1 tasks all start after graph 0 tasks all finished
        let g_end = |g: u32| {
            data.task_done.iter().filter(|d| d.graph.0 == g).map(|d| d.stop).max().unwrap()
        };
        let g_start = |g: u32| {
            data.task_done.iter().filter(|d| d.graph.0 == g).map(|d| d.start).min().unwrap()
        };
        assert!(g_start(1) >= g_end(0));
        assert!(g_start(2) >= g_end(1));
    }
}
