//! The dynamic scheduler: Dask's scheduler state machine as pure logic.
//!
//! The scheduler owns the task table (states, dependencies, placement,
//! replica locations), the worker table (thread occupancy, ready backlogs,
//! resident data), the placement heuristic, scheduler-side queuing, and
//! work stealing. It is *engine-agnostic*: it never advances time or draws
//! randomness — the discrete-event simulator ([`crate::sim`]) and the real
//! executor ([`crate::exec`]) drive it and carry out the [`Action`]s it
//! returns. That separation is what lets both modes share one scheduling
//! behaviour (and one instrumentation surface).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use dtf_core::error::{DtfError, Result};
use dtf_core::events::{
    Location, Stimulus, TaskDoneEvent, TaskMetaEvent, TaskState, TransitionEvent, WorkerTaskState,
    WorkerTransitionEvent,
};
use dtf_core::ids::{ClientId, GraphId, TaskKey, ThreadId, WorkerId};
use dtf_core::time::Time;

use crate::graph::{Payload, TaskGraph};
use crate::plugins::{PluginSet, WmsPlugin};

/// Scheduler tuning (the `distributed.yaml` analog surface that matters to
/// scheduling behaviour).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Enable idle workers stealing ready tasks from busy ones.
    pub work_stealing: bool,
    /// Keep runnable tasks on the scheduler (state `queued`) once every
    /// worker already has `threads * queue_factor` tasks, instead of
    /// dispatching everything eagerly.
    pub queue_factor: f64,
    /// A worker is a stealing victim if its ready backlog exceeds this many
    /// tasks per thread.
    pub steal_backlog_per_thread: f64,
    /// Estimated task duration used by the placement heuristic to price a
    /// worker's occupancy, seconds (Dask keeps a measured per-prefix
    /// average; a constant estimate reproduces the same spill-vs-locality
    /// trade-off).
    pub est_task_duration_s: f64,
    /// Bandwidth assumed when pricing missing dependency transfers, B/s
    /// (Dask's `scheduler.bandwidth`, set to the Slingshot-class 1 GB/s).
    pub assumed_bandwidth: f64,
    /// Skewed-placement fault injection: multiply one worker's placement
    /// score by a weight (< 1.0 makes it look artificially cheap, piling
    /// work onto it). `None` (the default) changes nothing, so pre-fault
    /// config documents parse and schedule identically.
    #[serde(default = "Default::default")]
    pub hotspot: Option<dtf_core::fault::HotspotFault>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            work_stealing: true,
            queue_factor: 1.5,
            steal_backlog_per_thread: 1.0,
            est_task_duration_s: 0.5,
            assumed_bandwidth: 400e6,
            hotspot: None,
        }
    }
}

/// Work the engine must carry out on behalf of the scheduler.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Move `key`'s dependency data `dep` from `from` to `to` (the engine
    /// charges network cost, then calls [`Scheduler::fetch_done`]).
    Fetch { dep: TaskKey, from: WorkerId, to: WorkerId, nbytes: u64 },
}

#[derive(Debug)]
struct TaskRecord {
    graph: GraphId,
    payload: Payload,
    state: TaskState,
    deps: Vec<TaskKey>,
    dependents: Vec<TaskKey>,
    unfinished_deps: usize,
    /// Worker the task is assigned to while processing.
    assigned: Option<usize>,
    /// Dependencies whose data has not yet arrived at the assigned worker.
    /// A task leaves `Flight` only when this drains — a counter cannot
    /// distinguish a duplicate arrival of one dep from the arrival of
    /// another.
    missing_deps: BTreeSet<TaskKey>,
    /// Priority: lower runs earlier (submission order).
    priority: u64,
    nbytes: Option<u64>,
    /// Workers holding this task's output (set: one entry per replica).
    who_has: BTreeSet<usize>,
}

/// One dependency transfer in flight to one worker. At most one exists per
/// `(worker, dep)` pair — that is the dedup invariant: a second task needing
/// the same dep on the same worker joins `waiters` instead of triggering
/// another transfer.
#[derive(Debug)]
struct Inflight {
    /// Source worker index of the transfer.
    from: usize,
    /// Tasks on the destination worker waiting for this dep.
    waiters: BTreeSet<TaskKey>,
}

#[derive(Debug)]
struct WorkerEntry {
    id: WorkerId,
    threads: u32,
    /// Tasks currently executing on a thread.
    executing: BTreeSet<TaskKey>,
    /// Dispatched tasks whose inputs are all local, ordered by
    /// `(priority, key)`: `pop_first` starts the highest-priority task in
    /// O(log n) where the old `VecDeque` needed a linear position scan per
    /// insert.
    ready: BTreeSet<(u64, TaskKey)>,
    /// Dispatched tasks still waiting for dependency fetches.
    fetching: BTreeSet<TaskKey>,
    /// Output data resident on this worker: key -> nbytes.
    has_data: BTreeMap<TaskKey, u64>,
    alive: bool,
}

impl WorkerEntry {
    fn occupancy(&self) -> usize {
        self.executing.len() + self.ready.len() + self.fetching.len()
    }

    fn has_free_thread(&self) -> bool {
        self.alive && (self.executing.len() as u32) < self.threads
    }
}

/// The scheduler state machine.
pub struct Scheduler {
    cfg: SchedulerConfig,
    tasks: HashMap<TaskKey, TaskRecord>,
    workers: Vec<WorkerEntry>,
    /// Runnable tasks held on the scheduler (state `queued`), ordered by
    /// `(priority, key)`.
    queued: BTreeSet<(u64, TaskKey)>,
    /// In-flight dependency transfers: `(destination worker, dep)` → the
    /// transfer and its waiting tasks. Doubles as the dedup guard (an
    /// existing entry means the transfer is already under way) and as the
    /// reverse index `fetch_done` uses to resolve waiters without scanning
    /// every fetching task.
    inflight: BTreeMap<(usize, TaskKey), Inflight>,
    /// Worker id → index in `workers`.
    worker_index: HashMap<WorkerId, usize>,
    plugins: PluginSet,
    next_priority: u64,
    /// Keys of all tasks ever submitted, for cross-graph dependency checks.
    known_keys: HashSet<TaskKey>,
    /// Order in which tasks started executing (for schedule-order analysis).
    start_order: Vec<(TaskKey, Time)>,
    /// Runnable tasks parked because no live worker existed (`no-worker`).
    no_worker: Vec<TaskKey>,
    graphs_submitted: u32,
    steals: u64,
}

impl Scheduler {
    pub fn new(cfg: SchedulerConfig, plugins: PluginSet) -> Self {
        Self {
            cfg,
            tasks: HashMap::new(),
            workers: Vec::new(),
            queued: BTreeSet::new(),
            inflight: BTreeMap::new(),
            worker_index: HashMap::new(),
            plugins,
            next_priority: 0,
            known_keys: HashSet::new(),
            start_order: Vec::new(),
            no_worker: Vec::new(),
            graphs_submitted: 0,
            steals: 0,
        }
    }

    /// Register a worker (connection). Returns its internal index.
    pub fn add_worker(&mut self, id: WorkerId, threads: u32) -> usize {
        assert!(threads >= 1);
        self.workers.push(WorkerEntry {
            id,
            threads,
            executing: BTreeSet::new(),
            ready: BTreeSet::new(),
            fetching: BTreeSet::new(),
            has_data: BTreeMap::new(),
            alive: true,
        });
        let idx = self.workers.len() - 1;
        self.worker_index.insert(id, idx);
        idx
    }

    pub fn worker_ids(&self) -> Vec<WorkerId> {
        self.workers.iter().map(|w| w.id).collect()
    }

    pub fn plugins_mut(&mut self) -> &mut PluginSet {
        &mut self.plugins
    }

    pub fn graphs_submitted(&self) -> u32 {
        self.graphs_submitted
    }

    pub fn steal_count(&self) -> u64 {
        self.steals
    }

    /// Order in which tasks began executing.
    pub fn start_order(&self) -> &[(TaskKey, Time)] {
        &self.start_order
    }

    /// Number of tasks not yet in a terminal state.
    pub fn unfinished(&self) -> usize {
        self.tasks.values().filter(|t| !t.state.is_terminal()).count()
    }

    pub fn task_state(&self, key: &TaskKey) -> Option<TaskState> {
        self.tasks.get(key).map(|t| t.state)
    }

    pub fn payload(&self, key: &TaskKey) -> Option<&Payload> {
        self.tasks.get(key).map(|t| &t.payload)
    }

    /// Graph a task belongs to.
    pub fn task_graph(&self, key: &TaskKey) -> Option<GraphId> {
        self.tasks.get(key).map(|t| t.graph)
    }

    /// Dependency keys of a task, in declaration order.
    pub fn task_deps(&self, key: &TaskKey) -> Option<Vec<TaskKey>> {
        self.tasks.get(key).map(|t| t.deps.clone())
    }

    fn emit_transition(
        &mut self,
        key: &TaskKey,
        to: TaskState,
        stimulus: Stimulus,
        location: Location,
        now: Time,
    ) {
        let rec = self.tasks.get_mut(key).expect("transition of known task");
        let from = rec.state;
        debug_assert!(
            from.can_transition_to(to),
            "illegal transition {} -> {} for {key}",
            from.as_str(),
            to.as_str()
        );
        rec.state = to;
        let graph = rec.graph;
        self.plugins.on_transition(&TransitionEvent {
            key: key.clone(),
            graph,
            from,
            to,
            stimulus,
            location,
            time: now,
        });
    }

    fn emit_worker_transition(
        &mut self,
        key: &TaskKey,
        widx: usize,
        from: WorkerTaskState,
        to: WorkerTaskState,
        now: Time,
    ) {
        debug_assert!(
            from.can_transition_to(to),
            "illegal worker transition {} -> {} for {key}",
            from.as_str(),
            to.as_str()
        );
        let graph = self.tasks[key].graph;
        let worker = self.workers[widx].id;
        self.plugins.on_worker_transition(&WorkerTransitionEvent {
            key: key.clone(),
            graph,
            worker,
            from,
            to,
            time: now,
        });
    }

    // ------------------------------------------------------------------
    // Graph submission
    // ------------------------------------------------------------------

    /// Submit a validated graph. Returns fetch actions for the engine.
    pub fn submit_graph(&mut self, graph: TaskGraph, now: Time) -> Result<Vec<Action>> {
        graph
            .validate(&self.known_keys)
            .map_err(|e| DtfError::InvalidGraph(format!("graph {}: {e}", graph.id)))?;
        if self.workers.is_empty() {
            return Err(DtfError::IllegalState("no workers connected".into()));
        }
        self.graphs_submitted += 1;
        let mut new_keys = Vec::with_capacity(graph.tasks.len());
        for spec in graph.tasks {
            let priority = self.next_priority;
            self.next_priority += 1;
            let unfinished = spec
                .deps
                .iter()
                .filter(|d| {
                    self.tasks.get(*d).map(|t| t.state != TaskState::Memory).unwrap_or(true)
                })
                .count();
            for d in &spec.deps {
                if let Some(dep) = self.tasks.get_mut(d) {
                    dep.dependents.push(spec.key.clone());
                }
            }
            self.known_keys.insert(spec.key.clone());
            self.tasks.insert(
                spec.key.clone(),
                TaskRecord {
                    graph: graph.id,
                    payload: spec.payload,
                    state: TaskState::Released,
                    deps: spec.deps,
                    dependents: Vec::new(),
                    unfinished_deps: unfinished,
                    assigned: None,
                    missing_deps: BTreeSet::new(),
                    priority,
                    nbytes: None,
                    who_has: BTreeSet::new(),
                },
            );
            new_keys.push(spec.key.clone());
        }
        let mut actions = Vec::new();
        for key in new_keys {
            let meta = TaskMetaEvent {
                key: key.clone(),
                graph: self.tasks[&key].graph,
                client: ClientId(0),
                deps: self.tasks[&key].deps.clone(),
                submitted: now,
            };
            self.plugins.on_task_meta(&meta);
            self.emit_transition(
                &key,
                TaskState::Waiting,
                Stimulus::GraphSubmitted,
                Location::Scheduler,
                now,
            );
            if self.tasks[&key].unfinished_deps == 0 {
                actions.extend(self.make_runnable(&key, now));
            }
        }
        Ok(actions)
    }

    // ------------------------------------------------------------------
    // Placement
    // ------------------------------------------------------------------

    /// Dask-like placement: minimize estimated start time —
    /// `occupancy(w) + transfer_time(missing dependency bytes)` — pricing
    /// occupancy with a constant per-task duration estimate and transfers
    /// with the scheduler's assumed bandwidth. Workers with busy threads
    /// spill work to peers when the transfer is cheaper than the wait,
    /// which is where most inter-worker communications come from.
    /// Returns `None` if no worker is alive.
    fn decide_worker(&self, key: &TaskKey) -> Option<usize> {
        let rec = &self.tasks[key];
        let mut best_score = f64::INFINITY;
        let mut best_idx = None;
        for (i, w) in self.workers.iter().enumerate() {
            if !w.alive {
                continue;
            }
            let missing_bytes: u64 = rec
                .deps
                .iter()
                .filter(|d| !w.has_data.contains_key(*d))
                .filter_map(|d| self.tasks[d].nbytes)
                .sum();
            // threads drain occupancy in parallel
            let backlog = w.occupancy() as f64 / w.threads.max(1) as f64;
            let mut score = backlog * self.cfg.est_task_duration_s
                + missing_bytes as f64 / self.cfg.assumed_bandwidth;
            if let Some(h) = &self.cfg.hotspot {
                if h.worker as usize == i {
                    score *= h.weight;
                }
            }
            if score < best_score {
                best_score = score;
                best_idx = Some(i);
            }
        }
        best_idx
    }

    /// Whether every worker is saturated per the queuing policy. With no
    /// live workers at all the question is moot: dispatch proceeds and the
    /// task lands in `no-worker` (Dask's semantics).
    fn all_saturated(&self) -> bool {
        let mut any = false;
        for w in self.workers.iter().filter(|w| w.alive) {
            any = true;
            if (w.occupancy() as f64) < w.threads as f64 * self.cfg.queue_factor {
                return false;
            }
        }
        any
    }

    /// A task's dependencies are met: queue it or dispatch it.
    fn make_runnable(&mut self, key: &TaskKey, now: Time) -> Vec<Action> {
        if self.all_saturated() {
            self.emit_transition(key, TaskState::Queued, Stimulus::Queue, Location::Scheduler, now);
            let p = self.tasks[key].priority;
            self.queued.insert((p, key.clone()));
            Vec::new()
        } else {
            self.dispatch(key, now)
        }
    }

    /// Assign `key` to a worker; generate fetches for missing inputs.
    fn dispatch(&mut self, key: &TaskKey, now: Time) -> Vec<Action> {
        let Some(widx) = self.decide_worker(key) else {
            self.emit_transition(
                key,
                TaskState::NoWorker,
                Stimulus::NoWorkerAvailable,
                Location::Scheduler,
                now,
            );
            self.no_worker.push(key.clone());
            return Vec::new();
        };
        self.emit_transition(
            key,
            TaskState::Processing,
            Stimulus::Dispatched,
            Location::Scheduler,
            now,
        );
        self.place_on_worker(key, widx, now)
    }

    /// Common path of dispatch and steal: set assignment, compute fetches.
    /// A dep already in flight to `widx` (for an earlier task) is joined,
    /// not re-fetched — one transfer per `(worker, dep)` pair.
    fn place_on_worker(&mut self, key: &TaskKey, widx: usize, now: Time) -> Vec<Action> {
        let deps = self.tasks[key].deps.clone();
        let to = self.workers[widx].id;
        let mut actions = Vec::new();
        let mut missing = BTreeSet::new();
        for dep in &deps {
            if self.workers[widx].has_data.contains_key(dep) {
                continue;
            }
            missing.insert(dep.clone());
            match self.inflight.entry((widx, dep.clone())) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    // already being transferred for another task: join it
                    e.get_mut().waiters.insert(key.clone());
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    let dep_rec = &self.tasks[dep];
                    // choose the lowest-indexed live holder
                    let holder = dep_rec
                        .who_has
                        .iter()
                        .copied()
                        .find(|&h| self.workers[h].alive)
                        .expect("runnable task has all inputs somewhere");
                    e.insert(Inflight {
                        from: holder,
                        waiters: std::iter::once(key.clone()).collect(),
                    });
                    actions.push(Action::Fetch {
                        dep: dep.clone(),
                        from: self.workers[holder].id,
                        to,
                        nbytes: dep_rec.nbytes.unwrap_or(0),
                    });
                }
            }
        }
        let pending = !missing.is_empty();
        {
            let rec = self.tasks.get_mut(key).expect("known task");
            rec.assigned = Some(widx);
            rec.missing_deps = missing;
        }
        if !pending {
            let p = self.tasks[key].priority;
            self.workers[widx].ready.insert((p, key.clone()));
            self.emit_worker_transition(
                key,
                widx,
                WorkerTaskState::Waiting,
                WorkerTaskState::Ready,
                now,
            );
        } else {
            self.workers[widx].fetching.insert(key.clone());
            self.emit_worker_transition(
                key,
                widx,
                WorkerTaskState::Waiting,
                WorkerTaskState::Fetch,
                now,
            );
            self.emit_worker_transition(
                key,
                widx,
                WorkerTaskState::Fetch,
                WorkerTaskState::Flight,
                now,
            );
        }
        actions
    }

    // ------------------------------------------------------------------
    // Engine callbacks
    // ------------------------------------------------------------------

    /// A dependency transfer finished: `dep`'s data is now also on `to`.
    /// Resolves the waiters registered under the `(to, dep)` in-flight
    /// entry — no scan over the worker's fetching set. A replayed or stale
    /// completion (no in-flight entry) still records the data but wakes
    /// nobody, so it can never mark a task ready prematurely.
    pub fn fetch_done(&mut self, dep: &TaskKey, to: WorkerId, now: Time) {
        let Some(widx) = self.worker_index(to) else { return };
        if self.workers[widx].alive {
            let nbytes = self.tasks[dep].nbytes.unwrap_or(0);
            self.workers[widx].has_data.insert(dep.clone(), nbytes);
            self.tasks.get_mut(dep).expect("dep known").who_has.insert(widx);
        }
        let Some(flight) = self.inflight.remove(&(widx, dep.clone())) else { return };
        for key in flight.waiters {
            let Some(rec) = self.tasks.get_mut(&key) else { continue };
            // the waiter may have been re-planned elsewhere meanwhile
            if rec.assigned != Some(widx) {
                continue;
            }
            rec.missing_deps.remove(dep);
            if rec.missing_deps.is_empty() {
                let p = rec.priority;
                let w = &mut self.workers[widx];
                w.fetching.remove(&key);
                w.ready.insert((p, key.clone()));
                self.emit_worker_transition(
                    &key,
                    widx,
                    WorkerTaskState::Flight,
                    WorkerTaskState::Ready,
                    now,
                );
            }
        }
    }

    /// If `worker` has a free thread and a ready task, start it: returns the
    /// task to execute. The engine charges its duration and later calls
    /// [`Self::task_finished`].
    pub fn try_start(&mut self, worker: WorkerId, now: Time) -> Option<TaskKey> {
        let widx = self.worker_index(worker)?;
        if !self.workers[widx].has_free_thread() {
            return None;
        }
        let (_, key) = self.workers[widx].ready.pop_first()?;
        self.workers[widx].executing.insert(key.clone());
        self.start_order.push((key.clone(), now));
        self.emit_worker_transition(
            &key,
            widx,
            WorkerTaskState::Ready,
            WorkerTaskState::Executing,
            now,
        );
        // worker-side observation of compute start
        let graph = self.tasks[&key].graph;
        let state = self.tasks[&key].state;
        self.plugins.on_transition(&TransitionEvent {
            key: key.clone(),
            graph,
            from: state,
            to: state,
            stimulus: Stimulus::ComputeStarted,
            location: Location::Worker(worker),
            time: now,
        });
        Some(key)
    }

    /// Task finished executing on `worker`. Emits Memory transition and the
    /// completion record; unlocks dependents; refills from the scheduler
    /// queue. Returns new fetch actions.
    pub fn task_finished(
        &mut self,
        key: &TaskKey,
        worker: WorkerId,
        thread: ThreadId,
        start: Time,
        now: Time,
        nbytes: u64,
    ) -> Vec<Action> {
        let widx = self.worker_index(worker).expect("worker exists");
        let removed = self.workers[widx].executing.remove(key);
        debug_assert!(removed, "finished task {key} was not executing");
        self.workers[widx].has_data.insert(key.clone(), nbytes);
        {
            let rec = self.tasks.get_mut(key).expect("known task");
            rec.nbytes = Some(nbytes);
            rec.who_has.insert(widx);
            rec.assigned = None;
        }
        self.emit_worker_transition(
            key,
            widx,
            WorkerTaskState::Executing,
            WorkerTaskState::Memory,
            now,
        );
        self.emit_transition(
            key,
            TaskState::Memory,
            Stimulus::ComputeFinished,
            Location::Worker(worker),
            now,
        );
        let graph = self.tasks[key].graph;
        self.plugins.on_task_done(&TaskDoneEvent {
            key: key.clone(),
            graph,
            worker,
            thread,
            start,
            stop: now,
            nbytes,
        });

        let mut actions = Vec::new();
        // dependents may become runnable
        let dependents = self.tasks[key].dependents.clone();
        for dep in dependents {
            let rec = self.tasks.get_mut(&dep).expect("dependent known");
            rec.unfinished_deps = rec.unfinished_deps.saturating_sub(1);
            if rec.unfinished_deps == 0 && rec.state == TaskState::Waiting {
                actions.extend(self.make_runnable(&dep, now));
            }
        }
        // refill workers from the scheduler-side queue
        actions.extend(self.refill_from_queue(now));
        actions
    }

    fn refill_from_queue(&mut self, now: Time) -> Vec<Action> {
        let mut actions = Vec::new();
        while !self.queued.is_empty() && !self.all_saturated() {
            let (_, key) = self.queued.pop_first().expect("nonempty queue");
            actions.extend(self.dispatch(&key, now));
        }
        actions
    }

    // ------------------------------------------------------------------
    // Work stealing
    // ------------------------------------------------------------------

    /// Rebalance ready backlogs: idle workers steal from saturated ones,
    /// and tasks parked in `no-worker` are re-dispatched once a live worker
    /// exists again.
    pub fn rebalance(&mut self, now: Time) -> Vec<Action> {
        let mut actions = Vec::new();
        if !self.no_worker.is_empty() && self.workers.iter().any(|w| w.alive) {
            let parked = std::mem::take(&mut self.no_worker);
            for key in parked {
                if self.task_state(&key) == Some(TaskState::NoWorker) {
                    self.emit_transition(
                        &key,
                        TaskState::Processing,
                        Stimulus::Dispatched,
                        Location::Scheduler,
                        now,
                    );
                    let widx = self.decide_worker(&key).expect("a live worker exists");
                    actions.extend(self.place_on_worker(&key, widx, now));
                }
            }
        }
        // a periodic refill also unsticks the scheduler queue when worker
        // capacity changed outside the task_finished path (e.g. new worker)
        actions.extend(self.refill_from_queue(now));
        if !self.cfg.work_stealing {
            return actions;
        }
        loop {
            // thief: the most under-committed live worker (fewer queued and
            // running tasks than threads)
            let thief = self
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| w.alive && w.occupancy() < w.threads as usize)
                .min_by_key(|(_, w)| w.ready.len() + w.fetching.len())
                .map(|(i, _)| i);
            // victim: live worker with the largest backlog above threshold
            let victim = self
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| {
                    w.alive
                        && w.ready.len() as f64
                            > (w.threads as f64 * self.cfg.steal_backlog_per_thread).max(1.0)
                })
                .max_by_key(|(_, w)| w.ready.len())
                .map(|(i, _)| i);
            let (Some(thief), Some(victim)) = (thief, victim) else { break };
            if thief == victim {
                break;
            }
            // steal the lowest-priority (latest) ready task from the victim
            let Some((_, key)) = self.workers[victim].ready.pop_last() else { break };
            self.steals += 1;
            let thief_id = self.workers[thief].id;
            self.emit_transition(
                &key,
                TaskState::Processing,
                Stimulus::WorkStolen,
                Location::Worker(thief_id),
                now,
            );
            actions.extend(self.place_on_worker(&key, thief, now));
        }
        actions
    }

    // ------------------------------------------------------------------
    // Failure handling
    // ------------------------------------------------------------------

    /// A worker died: re-plan everything it was running or holding, and
    /// re-source or abandon the transfers it was serving to live workers.
    /// Returns actions (fetches for re-dispatched tasks and re-issued
    /// transfers).
    pub fn worker_died(&mut self, worker: WorkerId, now: Time) -> Vec<Action> {
        let Some(widx) = self.worker_index(worker) else { return Vec::new() };
        self.workers[widx].alive = false;
        let executing: Vec<TaskKey> =
            std::mem::take(&mut self.workers[widx].executing).into_iter().collect();
        let ready: Vec<TaskKey> =
            std::mem::take(&mut self.workers[widx].ready).into_iter().map(|(_, k)| k).collect();
        let fetching: Vec<TaskKey> =
            std::mem::take(&mut self.workers[widx].fetching).into_iter().collect();
        let held: Vec<TaskKey> =
            std::mem::take(&mut self.workers[widx].has_data).into_keys().collect();

        // transfers TO the dead worker die with it; their waiters are
        // exactly the dead worker's fetching tasks, re-planned below
        let to_dead: Vec<(usize, TaskKey)> =
            self.inflight.keys().filter(|(w, _)| *w == widx).cloned().collect();
        for k in to_dead {
            self.inflight.remove(&k);
        }

        // outputs lost: remove replica; if it was the only one and the data
        // is still needed, the task must be recomputed. "Needed" is
        // transitive over this batch: a lost output whose only dependent is
        // another lost output is needed exactly when that dependent is —
        // both died with this worker, and recomputing the dependent will
        // re-read the input.
        let mut candidates = Vec::new();
        for key in held {
            {
                let rec = self.tasks.get_mut(&key).expect("held task known");
                rec.who_has.remove(&widx);
            }
            let rec = &self.tasks[&key];
            if rec.who_has.is_empty() && rec.state == TaskState::Memory {
                candidates.push(key);
            }
        }
        let mut needed_set: BTreeSet<TaskKey> = BTreeSet::new();
        loop {
            // fixpoint; terminates because the dependency graph is acyclic
            let mut changed = false;
            for key in &candidates {
                if needed_set.contains(key) {
                    continue;
                }
                let needed = self.tasks[key]
                    .dependents
                    .iter()
                    .any(|d| !self.tasks[d].state.is_terminal() || needed_set.contains(d));
                if needed {
                    needed_set.insert(key.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let to_recompute: Vec<TaskKey> =
            candidates.into_iter().filter(|k| needed_set.contains(k)).collect();
        let mut actions = Vec::new();
        let mut recomputed = Vec::new();
        for key in to_recompute {
            // Memory -> Released -> Waiting, then runnable again
            self.emit_transition(
                &key,
                TaskState::Released,
                Stimulus::WorkerLost,
                Location::Scheduler,
                now,
            );
            self.emit_transition(
                &key,
                TaskState::Waiting,
                Stimulus::WorkerLost,
                Location::Scheduler,
                now,
            );
            {
                let rec = self.tasks.get_mut(&key).expect("known");
                rec.nbytes = None;
                rec.assigned = None;
                rec.missing_deps.clear();
                // recompute its unfinished deps (inputs may also be gone)
                rec.unfinished_deps = 0;
            }
            let deps = self.tasks[&key].deps.clone();
            let mut unfinished = 0;
            for d in &deps {
                if self.tasks[d].state != TaskState::Memory {
                    unfinished += 1;
                }
            }
            self.tasks.get_mut(&key).expect("known").unfinished_deps = unfinished;
            // bump dependents' unfinished counts: their input went away
            let dependents = self.tasks[&key].dependents.clone();
            for d in dependents {
                let drec = self.tasks.get_mut(&d).expect("dependent known");
                if !drec.state.is_terminal() {
                    drec.unfinished_deps += 1;
                }
            }
            recomputed.push(key);
        }
        // Dispatch only after every lost output has been revoked: a task
        // early in the batch can look ready (its dep still reads `memory`)
        // until a later entry — that dep, whose only replica also died —
        // sends it back to waiting and bumps the count.
        for key in recomputed {
            if self.tasks[&key].unfinished_deps == 0 {
                actions.extend(self.make_runnable(&key, now));
            }
        }
        // in-flight work on the dead worker goes back to waiting and is
        // re-planned
        for key in executing.into_iter().chain(ready).chain(fetching) {
            self.emit_transition(
                &key,
                TaskState::Waiting,
                Stimulus::WorkerLost,
                Location::Scheduler,
                now,
            );
            {
                let rec = self.tasks.get_mut(&key).expect("known");
                rec.assigned = None;
                rec.missing_deps.clear();
            }
            let ready_now =
                self.tasks[&key].deps.iter().all(|d| self.tasks[d].state == TaskState::Memory);
            if ready_now {
                actions.extend(self.make_runnable(&key, now));
            }
        }
        // transfers FROM the dead worker to live workers never complete:
        // re-issue each from a surviving replica, or — when the last
        // replica just died — abandon it and send its waiters back to
        // waiting so the recompute path re-plans them. This pass runs last
        // because the re-planning above may have joined tasks onto these
        // very entries.
        let from_dead: Vec<(usize, TaskKey)> =
            self.inflight.iter().filter(|(_, f)| f.from == widx).map(|(k, _)| k.clone()).collect();
        let mut orphans: BTreeSet<TaskKey> = BTreeSet::new();
        for (to_widx, dep) in from_dead {
            let new_holder =
                self.tasks[&dep].who_has.iter().copied().find(|&h| self.workers[h].alive);
            if let Some(holder) = new_holder {
                let flight =
                    self.inflight.get_mut(&(to_widx, dep.clone())).expect("entry collected above");
                flight.from = holder;
                actions.push(Action::Fetch {
                    dep: dep.clone(),
                    from: self.workers[holder].id,
                    to: self.workers[to_widx].id,
                    nbytes: self.tasks[&dep].nbytes.unwrap_or(0),
                });
            } else {
                let flight = self.inflight.remove(&(to_widx, dep)).expect("entry collected above");
                orphans.extend(flight.waiters);
            }
        }
        for key in orphans {
            let Some(rec) = self.tasks.get(&key) else { continue };
            let Some(awidx) = rec.assigned else { continue };
            self.workers[awidx].fetching.remove(&key);
            // drop it from any other transfer it was waiting on; the
            // transfers themselves proceed (arriving data is still recorded)
            for flight in self.inflight.values_mut() {
                flight.waiters.remove(&key);
            }
            self.emit_transition(
                &key,
                TaskState::Waiting,
                Stimulus::WorkerLost,
                Location::Scheduler,
                now,
            );
            let deps = self.tasks[&key].deps.clone();
            let unfinished =
                deps.iter().filter(|d| self.tasks[*d].state != TaskState::Memory).count();
            {
                let rec = self.tasks.get_mut(&key).expect("known");
                rec.assigned = None;
                rec.missing_deps.clear();
                rec.unfinished_deps = unfinished;
            }
            if unfinished == 0 {
                actions.extend(self.make_runnable(&key, now));
            }
        }
        actions
    }

    fn worker_index(&self, id: WorkerId) -> Option<usize> {
        self.worker_index.get(&id).copied()
    }

    // ------------------------------------------------------------------
    // Invariant oracle
    // ------------------------------------------------------------------

    /// Structural-coherence oracle: cross-check the task table, the worker
    /// tables, and the in-flight transfer ledger against each other.
    /// Returns one message per violated invariant (empty = consistent).
    /// Pure observation — no mutation — so engines (and the chaos harness)
    /// can call it after every event.
    ///
    /// Checked here (the transition-*history* invariants — legality of each
    /// step, exactly-one-terminal — live in the `dtf-chaos` reference
    /// model, which replays the emitted log):
    /// - a `ready` task has no undrained `missing_deps` and all inputs
    ///   resident on its worker;
    /// - a `fetching` task's every missing dep has an in-flight entry on
    ///   that worker listing the task as a waiter (the ≤1-transfer-per-
    ///   `(worker, dep)` half is structural: `inflight` is keyed by the
    ///   pair, so this check makes the bound exact);
    /// - in-flight transfers connect live workers and known deps;
    /// - `who_has` ⊆ live workers, each entry backed by the worker's
    ///   `has_data`;
    /// - thread occupancy bounds and state agreement for executing/ready/
    ///   queued tasks; dead workers hold neither work nor data.
    pub fn invariant_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        for (widx, w) in self.workers.iter().enumerate() {
            if w.executing.len() > w.threads as usize {
                v.push(format!(
                    "worker {} executing {} tasks on {} threads",
                    w.id,
                    w.executing.len(),
                    w.threads
                ));
            }
            if !w.alive
                && (!w.executing.is_empty()
                    || !w.ready.is_empty()
                    || !w.fetching.is_empty()
                    || !w.has_data.is_empty())
            {
                v.push(format!("dead worker {} still holds work or data", w.id));
            }
            for (p, key) in &w.ready {
                let Some(rec) = self.tasks.get(key) else {
                    v.push(format!("ready task {key} on {} unknown to the task table", w.id));
                    continue;
                };
                if !rec.missing_deps.is_empty() {
                    v.push(format!(
                        "task {key} ready on {} with undrained missing_deps {:?}",
                        w.id, rec.missing_deps
                    ));
                }
                if rec.assigned != Some(widx) {
                    v.push(format!(
                        "task {key} ready on {} but assigned to {:?}",
                        w.id, rec.assigned
                    ));
                }
                if *p != rec.priority {
                    v.push(format!(
                        "task {key} ready under priority {p}, record says {}",
                        rec.priority
                    ));
                }
                if rec.state != TaskState::Processing {
                    v.push(format!(
                        "task {key} ready on {} in scheduler state {}",
                        w.id,
                        rec.state.as_str()
                    ));
                }
                for d in &rec.deps {
                    if !w.has_data.contains_key(d) {
                        v.push(format!("task {key} ready on {} without dep {d} resident", w.id));
                    }
                }
            }
            for key in &w.fetching {
                let Some(rec) = self.tasks.get(key) else {
                    v.push(format!("fetching task {key} on {} unknown to the task table", w.id));
                    continue;
                };
                if rec.missing_deps.is_empty() {
                    v.push(format!("task {key} fetching on {} with nothing missing", w.id));
                }
                if rec.assigned != Some(widx) {
                    v.push(format!(
                        "task {key} fetching on {} but assigned to {:?}",
                        w.id, rec.assigned
                    ));
                }
                for d in &rec.missing_deps {
                    match self.inflight.get(&(widx, d.clone())) {
                        None => v.push(format!(
                            "task {key} on {} waits for {d} with no transfer in flight",
                            w.id
                        )),
                        Some(f) if !f.waiters.contains(key) => v.push(format!(
                            "task {key} on {} waits for {d} but is not a registered waiter",
                            w.id
                        )),
                        _ => {}
                    }
                }
            }
            for key in &w.executing {
                let Some(rec) = self.tasks.get(key) else {
                    v.push(format!("executing task {key} on {} unknown to the task table", w.id));
                    continue;
                };
                if rec.state != TaskState::Processing {
                    v.push(format!(
                        "task {key} executing on {} in scheduler state {}",
                        w.id,
                        rec.state.as_str()
                    ));
                }
                if rec.assigned != Some(widx) {
                    v.push(format!(
                        "task {key} executing on {} but assigned to {:?}",
                        w.id, rec.assigned
                    ));
                }
            }
        }
        for ((widx, dep), flight) in &self.inflight {
            if !self.tasks.contains_key(dep) {
                v.push(format!("in-flight transfer of unknown dep {dep}"));
                continue;
            }
            match self.workers.get(*widx) {
                None => v.push(format!("transfer of {dep} to out-of-range worker index {widx}")),
                Some(w) if !w.alive => v.push(format!("transfer of {dep} to dead worker {}", w.id)),
                _ => {}
            }
            match self.workers.get(flight.from) {
                None => v.push(format!(
                    "transfer of {dep} from out-of-range worker index {}",
                    flight.from
                )),
                Some(w) if !w.alive => {
                    v.push(format!("transfer of {dep} sourced from dead worker {}", w.id))
                }
                _ => {}
            }
            for waiter in &flight.waiters {
                let Some(rec) = self.tasks.get(waiter) else {
                    v.push(format!("unknown task {waiter} waits on transfer of {dep}"));
                    continue;
                };
                // a waiter re-planned elsewhere is tolerated (fetch_done
                // skips it); one still assigned here must list the dep
                if rec.assigned == Some(*widx) && !rec.missing_deps.contains(dep) {
                    v.push(format!(
                        "task {waiter} registered as waiter for {dep} it no longer misses"
                    ));
                }
            }
        }
        for (key, rec) in &self.tasks {
            for &h in &rec.who_has {
                match self.workers.get(h) {
                    None => v.push(format!("who_has of {key} lists out-of-range worker index {h}")),
                    Some(w) if !w.alive => {
                        v.push(format!("who_has of {key} lists dead worker {}", w.id))
                    }
                    Some(w) if !w.has_data.contains_key(key) => v.push(format!(
                        "who_has of {key} lists worker {} which does not hold the data",
                        w.id
                    )),
                    _ => {}
                }
            }
        }
        for (p, key) in &self.queued {
            let Some(rec) = self.tasks.get(key) else {
                v.push(format!("queued task {key} unknown to the task table"));
                continue;
            };
            if rec.state != TaskState::Queued {
                v.push(format!("task {key} queued in scheduler state {}", rec.state.as_str()));
            }
            if rec.assigned.is_some() {
                v.push(format!("queued task {key} assigned to {:?}", rec.assigned));
            }
            if *p != rec.priority {
                v.push(format!(
                    "task {key} queued under priority {p}, record says {}",
                    rec.priority
                ));
            }
        }
        v
    }

    /// Consume the scheduler, returning its plugin set (end of run).
    pub fn into_plugins(self) -> PluginSet {
        self.plugins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{GraphBuilder, SimAction};
    use crate::plugins::CollectorPlugin;
    use dtf_core::ids::NodeId;
    use dtf_core::time::Dur;
    use std::collections::HashSet as Set;

    fn worker(i: u32) -> WorkerId {
        WorkerId::new(NodeId(i / 4), i % 4)
    }

    fn sched(n_workers: u32, threads: u32, cfg: SchedulerConfig) -> (Scheduler, CollectorPlugin) {
        let collector = CollectorPlugin::new();
        let mut plugins = PluginSet::new();
        plugins.register(Box::new(collector.clone()));
        let mut s = Scheduler::new(cfg, plugins);
        for i in 0..n_workers {
            s.add_worker(worker(i), threads);
        }
        (s, collector)
    }

    fn chain_graph(n: usize) -> TaskGraph {
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        let mut prev: Option<TaskKey> = None;
        for i in 0..n {
            let deps = prev.iter().cloned().collect();
            prev = Some(b.add_sim(
                "step",
                tok,
                i as u32,
                deps,
                SimAction::compute_only(Dur::from_millis_f64(1.0), 100),
            ));
        }
        b.build(&Set::new()).unwrap()
    }

    /// Drive a scheduler to completion with a trivial engine that performs
    /// fetches instantly and runs one task at a time per free thread.
    fn drive(s: &mut Scheduler, mut actions: Vec<Action>) {
        let mut t = 0u64;
        loop {
            // complete all fetches instantly
            while let Some(Action::Fetch { dep, to, .. }) = actions.pop() {
                s.fetch_done(&dep, to, Time(t));
            }
            // start and instantly finish any startable task
            let mut progressed = false;
            for w in s.worker_ids() {
                while let Some(key) = s.try_start(w, Time(t)) {
                    progressed = true;
                    t += 1;
                    let more = s.task_finished(&key, w, ThreadId(1), Time(t - 1), Time(t), 100);
                    actions.extend(more);
                }
            }
            actions.extend(s.rebalance(Time(t)));
            if !progressed && actions.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn chain_executes_in_dependency_order() {
        let (mut s, collector) = sched(2, 2, SchedulerConfig::default());
        let actions = s.submit_graph(chain_graph(5), Time::ZERO).unwrap();
        drive(&mut s, actions);
        assert_eq!(s.unfinished(), 0);
        let order = s.start_order();
        assert_eq!(order.len(), 5);
        for i in 0..4 {
            assert!(order[i].0.index < order[i + 1].0.index, "chain order violated");
        }
        let events = collector.take();
        // every task: Released->Waiting, ->Processing, ->Memory at least
        assert!(events.transitions.len() >= 15);
        assert_eq!(events.task_done.len(), 5);
    }

    #[test]
    fn all_transitions_are_legal() {
        let (mut s, collector) = sched(2, 2, SchedulerConfig::default());
        let actions = s.submit_graph(chain_graph(20), Time::ZERO).unwrap();
        drive(&mut s, actions);
        for tr in collector.take().transitions {
            assert!(
                tr.from.can_transition_to(tr.to) || tr.from == tr.to,
                "illegal {} -> {}",
                tr.from.as_str(),
                tr.to.as_str()
            );
        }
    }

    #[test]
    fn wide_graph_spreads_across_workers() {
        let (mut s, collector) = sched(4, 2, SchedulerConfig::default());
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        for i in 0..40 {
            b.add_sim("leaf", tok, i, vec![], SimAction::compute_only(Dur(1), 10));
        }
        let actions = s.submit_graph(b.build(&Set::new()).unwrap(), Time::ZERO).unwrap();
        drive(&mut s, actions);
        assert_eq!(s.unfinished(), 0);
        let done = collector.take().task_done;
        let workers_used: Set<WorkerId> = done.iter().map(|d| d.worker).collect();
        assert!(workers_used.len() >= 3, "only {} workers used", workers_used.len());
    }

    #[test]
    fn dependency_on_remote_data_generates_fetch() {
        let (mut s, collector) =
            sched(2, 1, SchedulerConfig { work_stealing: false, ..Default::default() });
        // two roots land on different workers, join needs a fetch
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        let a = b.add_sim("rootA", tok, 0, vec![], SimAction::compute_only(Dur(1), 1000));
        let c = b.add_sim("rootB", tok, 1, vec![], SimAction::compute_only(Dur(1), 2000));
        b.add_sim("join", tok, 0, vec![a, c], SimAction::compute_only(Dur(1), 10));
        let mut actions = s.submit_graph(b.build(&Set::new()).unwrap(), Time::ZERO).unwrap();
        assert!(actions.is_empty(), "roots have no deps to fetch");
        // run the two roots
        let w0 = s.worker_ids()[0];
        let w1 = s.worker_ids()[1];
        let k0 = s.try_start(w0, Time(0)).unwrap();
        let k1 = s.try_start(w1, Time(0)).unwrap();
        actions.extend(s.task_finished(&k0, w0, ThreadId(1), Time(0), Time(1), 1000));
        actions.extend(s.task_finished(&k1, w1, ThreadId(1), Time(0), Time(1), 2000));
        // join was dispatched somewhere; one dep must be fetched
        let fetches: Vec<&Action> =
            actions.iter().filter(|a| matches!(a, Action::Fetch { .. })).collect();
        assert_eq!(fetches.len(), 1, "exactly one remote dependency: {actions:?}");
        drive(&mut s, actions);
        assert_eq!(s.unfinished(), 0);
        assert_eq!(collector.take().task_done.len(), 3);
    }

    #[test]
    fn placement_prefers_data_locality_for_heavy_outputs() {
        let (mut s, _c) =
            sched(2, 4, SchedulerConfig { work_stealing: false, ..Default::default() });
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        // 16 GB output: moving it costs far more than queueing behind peers
        let big = 16u64 << 30;
        let root = b.add_sim("root", tok, 0, vec![], SimAction::compute_only(Dur(1), big));
        for i in 0..4 {
            b.add_sim("child", tok, i, vec![root.clone()], SimAction::compute_only(Dur(1), 10));
        }
        let _ = s.submit_graph(b.build(&Set::new()).unwrap(), Time::ZERO).unwrap();
        let w0 = s.worker_ids()[0];
        let k = s.try_start(w0, Time(0)).unwrap();
        let actions = s.task_finished(&k, w0, ThreadId(1), Time(0), Time(1), big);
        // all children should be placed on w0 (data is there): no fetches
        assert!(actions.is_empty(), "locality placement should avoid fetches: {actions:?}");
    }

    #[test]
    fn placement_spills_cheap_data_to_idle_workers() {
        let (mut s, collector) =
            sched(2, 1, SchedulerConfig { work_stealing: false, ..Default::default() });
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        // 1 MB output: transferring it (~10 ms at assumed bandwidth) beats
        // waiting ~0.5 s behind the sibling on the same worker
        let root = b.add_sim("root", tok, 0, vec![], SimAction::compute_only(Dur(1), 1 << 20));
        for i in 0..4 {
            b.add_sim("child", tok, i, vec![root.clone()], SimAction::compute_only(Dur(1), 10));
        }
        let _ = s.submit_graph(b.build(&Set::new()).unwrap(), Time::ZERO).unwrap();
        let w0 = s.worker_ids()[0];
        let k = s.try_start(w0, Time(0)).unwrap();
        let actions = s.task_finished(&k, w0, ThreadId(1), Time(0), Time(1), 1 << 20);
        let fetches = actions.iter().filter(|a| matches!(a, Action::Fetch { .. })).count();
        assert!(fetches > 0, "children should spill to the idle worker");
        drive(&mut s, actions);
        assert_eq!(s.unfinished(), 0);
        let w1 = s.worker_ids()[1];
        assert!(
            collector.take().task_done.iter().any(|d| d.worker == w1),
            "the idle worker should have executed spilled children"
        );
    }

    #[test]
    fn queuing_holds_tasks_when_saturated() {
        let (mut s, collector) = sched(
            1,
            1,
            SchedulerConfig { queue_factor: 1.0, work_stealing: false, ..Default::default() },
        );
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        for i in 0..5 {
            b.add_sim("leaf", tok, i, vec![], SimAction::compute_only(Dur(1), 10));
        }
        let actions = s.submit_graph(b.build(&Set::new()).unwrap(), Time::ZERO).unwrap();
        assert!(actions.is_empty());
        let events = collector.take();
        let queued = events.transitions.iter().filter(|t| t.to == TaskState::Queued).count();
        assert_eq!(queued, 4, "1 dispatched, 4 queued");
        drive(&mut s, Vec::new());
        assert_eq!(s.unfinished(), 0);
    }

    #[test]
    fn stealing_moves_backlog_to_idle_worker() {
        let (mut s, collector) = sched(
            2,
            1,
            SchedulerConfig {
                work_stealing: true,
                queue_factor: 100.0, // no scheduler-side queuing: eager dispatch
                steal_backlog_per_thread: 1.0,
                ..Default::default()
            },
        );
        // a root chain pinned by locality to worker 0, then many children
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        // 32 GB output: locality pins every child to w0 first
        let big = 32u64 << 30;
        let root = b.add_sim("root", tok, 0, vec![], SimAction::compute_only(Dur(1), big));
        for i in 0..12 {
            b.add_sim("child", tok, i, vec![root.clone()], SimAction::compute_only(Dur(1), 10));
        }
        let _ = s.submit_graph(b.build(&Set::new()).unwrap(), Time::ZERO).unwrap();
        let w0 = s.worker_ids()[0];
        let k = s.try_start(w0, Time(0)).unwrap();
        let mut actions = s.task_finished(&k, w0, ThreadId(1), Time(0), Time(1), big);
        // all 12 children piled onto w0 by locality; rebalance steals some
        actions.extend(s.rebalance(Time(2)));
        assert!(s.steal_count() > 0, "stealing should trigger");
        drive(&mut s, actions);
        assert_eq!(s.unfinished(), 0);
        let done = collector.take().task_done;
        let w1 = s.worker_ids()[1];
        assert!(done.iter().any(|d| d.worker == w1), "thief executed stolen work");
    }

    #[test]
    fn stealing_disabled_keeps_backlog() {
        let (mut s, _c) = sched(
            2,
            1,
            SchedulerConfig {
                work_stealing: false,
                queue_factor: 100.0,
                steal_backlog_per_thread: 1.0,
                ..Default::default()
            },
        );
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        let big = 32u64 << 30;
        let root = b.add_sim("root", tok, 0, vec![], SimAction::compute_only(Dur(1), big));
        for i in 0..12 {
            b.add_sim("child", tok, i, vec![root.clone()], SimAction::compute_only(Dur(1), 10));
        }
        let _ = s.submit_graph(b.build(&Set::new()).unwrap(), Time::ZERO).unwrap();
        let w0 = s.worker_ids()[0];
        let k = s.try_start(w0, Time(0)).unwrap();
        let actions = s.task_finished(&k, w0, ThreadId(1), Time(0), Time(1), big);
        assert!(s.rebalance(Time(2)).is_empty());
        assert_eq!(s.steal_count(), 0);
        drive(&mut s, actions);
        assert_eq!(s.unfinished(), 0);
    }

    #[test]
    fn worker_death_recovers_lost_outputs() {
        let (mut s, collector) =
            sched(2, 2, SchedulerConfig { work_stealing: false, ..Default::default() });
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        let root = b.add_sim("root", tok, 0, vec![], SimAction::compute_only(Dur(1), 1 << 20));
        b.add_sim("child", tok, 0, vec![root.clone()], SimAction::compute_only(Dur(1), 10));
        let _ = s.submit_graph(b.build(&Set::new()).unwrap(), Time::ZERO).unwrap();
        let w0 = s.worker_ids()[0];
        let k = s.try_start(w0, Time(0)).unwrap();
        assert_eq!(k, root);
        let _ = s.task_finished(&k, w0, ThreadId(1), Time(0), Time(1), 1 << 20);
        // the child is now on w0 (locality); kill w0 before it runs
        let actions = s.worker_died(w0, Time(2));
        drive(&mut s, actions);
        assert_eq!(s.unfinished(), 0, "workflow completes despite death");
        // the root must have been recomputed: two TaskDone events for it
        let done = collector.take().task_done;
        let root_runs = done.iter().filter(|d| d.key == root).count();
        assert_eq!(root_runs, 2, "root recomputed after its output was lost");
        // and everything ran on the surviving worker
        let w1 = s.worker_ids()[1];
        assert!(done.iter().filter(|d| d.stop > Time(2)).all(|d| d.worker == w1));
    }

    #[test]
    fn no_worker_tasks_recover_when_capacity_returns() {
        let (mut s, collector) = sched(1, 2, SchedulerConfig::default());
        let w_dead = s.worker_ids()[0];
        // kill the only worker, then submit: tasks park in no-worker
        let _ = s.worker_died(w_dead, Time::ZERO);
        let actions = s.submit_graph(chain_graph(3), Time(1)).unwrap();
        assert!(actions.is_empty());
        assert_eq!(s.task_state(&TaskKey::new("step", 1, 0)), Some(TaskState::NoWorker));
        // a replacement worker connects; the periodic rebalance re-plans
        s.add_worker(worker(9), 2);
        let actions = s.rebalance(Time(2));
        drive(&mut s, actions);
        assert_eq!(s.unfinished(), 0, "parked tasks recovered");
        let events = collector.take();
        assert!(
            events.transitions.iter().any(|t| t.to == TaskState::NoWorker),
            "no-worker observed"
        );
        assert_eq!(events.task_done.len(), 3);
    }

    #[test]
    fn submit_requires_workers() {
        let collector = CollectorPlugin::new();
        let mut plugins = PluginSet::new();
        plugins.register(Box::new(collector));
        let mut s = Scheduler::new(SchedulerConfig::default(), plugins);
        assert!(s.submit_graph(chain_graph(1), Time::ZERO).is_err());
    }

    /// Producers `d`, `g` (small outputs) land on w0/w1; `e` (huge) on w2.
    /// Consumers pinned to w2 by `e`'s locality then share the small deps.
    /// Returns `(sched, collector, d, g, e)` with all producers finished.
    fn fetch_rig() -> (Scheduler, CollectorPlugin, TaskKey, TaskKey, TaskKey) {
        let (mut s, collector) = sched(
            3,
            1,
            SchedulerConfig { work_stealing: false, queue_factor: 100.0, ..Default::default() },
        );
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        let d = b.add_sim("d", tok, 0, vec![], SimAction::compute_only(Dur(1), 1 << 10));
        let g = b.add_sim("g", tok, 0, vec![], SimAction::compute_only(Dur(1), 1 << 10));
        let e = b.add_sim("e", tok, 0, vec![], SimAction::compute_only(Dur(1), 32 << 30));
        b.add_sim("t1", tok, 0, vec![e.clone(), d.clone()], SimAction::compute_only(Dur(1), 10));
        b.add_sim(
            "t2",
            tok,
            0,
            vec![e.clone(), d.clone(), g.clone()],
            SimAction::compute_only(Dur(1), 10),
        );
        let actions = s.submit_graph(b.build(&Set::new()).unwrap(), Time::ZERO).unwrap();
        assert!(actions.is_empty(), "producers have no deps");
        (s, collector, d, g, e)
    }

    /// Regression: two tasks on one worker sharing a missing dependency
    /// must trigger exactly one transfer of it, and a duplicated (replayed)
    /// completion must not mark a task ready while another of its deps is
    /// still in flight. With the old counter bookkeeping the second arrival
    /// of `d` decremented `t2`'s count for the still-missing `g`, starting
    /// `t2` without its input (executor panic "dependency value resident").
    #[test]
    fn duplicate_fetch_completion_cannot_mark_ready_prematurely() {
        let (mut s, _collector, d, g, e) = fetch_rig();
        let (w0, w1, w2) = (s.worker_ids()[0], s.worker_ids()[1], s.worker_ids()[2]);
        assert_eq!(s.try_start(w0, Time(0)).as_ref(), Some(&d));
        assert_eq!(s.try_start(w1, Time(0)).as_ref(), Some(&g));
        assert_eq!(s.try_start(w2, Time(0)).as_ref(), Some(&e));
        let mut actions = s.task_finished(&d, w0, ThreadId(1), Time(0), Time(1), 1 << 10);
        actions.extend(s.task_finished(&g, w1, ThreadId(1), Time(0), Time(1), 1 << 10));
        // e's 32 GB output pins t1 {e,d} and t2 {e,d,g} to w2
        actions.extend(s.task_finished(&e, w2, ThreadId(1), Time(0), Time(1), 32 << 30));
        let (mut d_fetches, mut g_fetches) = (0, 0);
        for a in &actions {
            let Action::Fetch { dep, to, .. } = a;
            assert_eq!(*to, w2, "all consumer inputs head for w2");
            if *dep == d {
                d_fetches += 1;
            } else if *dep == g {
                g_fetches += 1;
            }
        }
        assert_eq!(
            (d_fetches, g_fetches),
            (1, 1),
            "one transfer per (worker, dep): shared dep d must not be fetched twice: {actions:?}"
        );
        // d arrives twice (duplicate/replayed completion) before g arrives
        s.fetch_done(&d, w2, Time(2));
        s.fetch_done(&d, w2, Time(3));
        let started = s.try_start(w2, Time(4)).expect("t1 has all inputs");
        assert_eq!(started.prefix, "t1");
        let _ = s.task_finished(&started, w2, ThreadId(1), Time(4), Time(5), 10);
        // the thread is free again; only g's arrival may unblock t2
        assert!(
            s.try_start(w2, Time(5)).is_none(),
            "t2 must stay in flight until g actually arrives"
        );
        s.fetch_done(&g, w2, Time(6));
        let t2 = s.try_start(w2, Time(7)).expect("t2 ready once g arrived");
        assert_eq!(t2.prefix, "t2");
        let _ = s.task_finished(&t2, w2, ThreadId(1), Time(7), Time(8), 10);
        assert_eq!(s.unfinished(), 0);
    }

    /// `who_has` is one entry per replica: completions and fetch arrivals
    /// for the same worker must not accumulate duplicates (the old `Vec`
    /// push in `task_finished` had no contains-check).
    #[test]
    fn who_has_stays_one_entry_per_replica() {
        let (mut s, _collector, d, g, e) = fetch_rig();
        let (w0, w1, w2) = (s.worker_ids()[0], s.worker_ids()[1], s.worker_ids()[2]);
        assert_eq!(s.try_start(w0, Time(0)).as_ref(), Some(&d));
        assert_eq!(s.try_start(w1, Time(0)).as_ref(), Some(&g));
        assert_eq!(s.try_start(w2, Time(0)).as_ref(), Some(&e));
        let mut actions = s.task_finished(&d, w0, ThreadId(1), Time(0), Time(1), 1 << 10);
        actions.extend(s.task_finished(&g, w1, ThreadId(1), Time(0), Time(1), 1 << 10));
        actions.extend(s.task_finished(&e, w2, ThreadId(1), Time(0), Time(1), 32 << 30));
        // replayed completions for the same (dep, worker) pair
        s.fetch_done(&d, w2, Time(2));
        s.fetch_done(&d, w2, Time(3));
        s.fetch_done(&g, w2, Time(4));
        s.fetch_done(&g, w2, Time(4));
        drive(&mut s, Vec::new());
        assert_eq!(s.unfinished(), 0);
        for (key, rec) in &s.tasks {
            let replicas: Vec<usize> = rec.who_has.iter().copied().collect();
            let mut deduped = replicas.clone();
            deduped.dedup();
            assert_eq!(replicas, deduped, "duplicate replica entry for {key}");
            for &w in &rec.who_has {
                assert!(
                    s.workers[w].has_data.contains_key(key),
                    "who_has of {key} lists worker {w} which does not hold it"
                );
            }
        }
    }

    /// A transfer whose source dies mid-flight is re-issued from a
    /// surviving replica; the waiting task completes without stalling in
    /// `flight` forever.
    #[test]
    fn dead_fetch_source_reissues_from_surviving_replica() {
        let (mut s, _collector, d, g, e) = fetch_rig();
        let (w0, w1, w2) = (s.worker_ids()[0], s.worker_ids()[1], s.worker_ids()[2]);
        assert_eq!(s.try_start(w0, Time(0)).as_ref(), Some(&d));
        assert_eq!(s.try_start(w1, Time(0)).as_ref(), Some(&g));
        assert_eq!(s.try_start(w2, Time(0)).as_ref(), Some(&e));
        let _ = s.task_finished(&d, w0, ThreadId(1), Time(0), Time(1), 1 << 10);
        let _ = s.task_finished(&g, w1, ThreadId(1), Time(0), Time(1), 1 << 10);
        let actions = s.task_finished(&e, w2, ThreadId(1), Time(0), Time(1), 32 << 30);
        assert_eq!(actions.len(), 2, "d and g head for w2");
        // replicate d onto w1 so a second holder survives w0's death
        s.fetch_done(&d, w1, Time(2));
        // w0 dies while its transfer of d to w2 is still in flight
        let recovery = s.worker_died(w0, Time(3));
        let reissued: Vec<&Action> = recovery
            .iter()
            .filter(|a| {
                matches!(a, Action::Fetch { dep, from, to, .. }
                if dep == &d && *from == w1 && *to == w2)
            })
            .collect();
        assert_eq!(reissued.len(), 1, "transfer re-issued from surviving replica: {recovery:?}");
        // the original completion never arrives (source died); the
        // re-issued one does
        s.fetch_done(&d, w2, Time(4));
        s.fetch_done(&g, w2, Time(5));
        drive(&mut s, Vec::new());
        assert_eq!(s.unfinished(), 0, "waiters must not stall in flight");
    }

    /// A transfer whose source dies holding the only replica: the waiters
    /// go back to waiting and the recompute path re-plans everything.
    #[test]
    fn dead_fetch_source_without_replica_recomputes() {
        let (mut s, collector, d, g, e) = fetch_rig();
        let (w0, w1, w2) = (s.worker_ids()[0], s.worker_ids()[1], s.worker_ids()[2]);
        assert_eq!(s.try_start(w0, Time(0)).as_ref(), Some(&d));
        assert_eq!(s.try_start(w1, Time(0)).as_ref(), Some(&g));
        assert_eq!(s.try_start(w2, Time(0)).as_ref(), Some(&e));
        let _ = s.task_finished(&d, w0, ThreadId(1), Time(0), Time(1), 1 << 10);
        let _ = s.task_finished(&g, w1, ThreadId(1), Time(0), Time(1), 1 << 10);
        let _ = s.task_finished(&e, w2, ThreadId(1), Time(0), Time(1), 32 << 30);
        // g's transfer (live source) completes; d's never will
        s.fetch_done(&g, w2, Time(2));
        // w0 dies holding the only replica of d; its transfer to w2 is lost
        let recovery = s.worker_died(w0, Time(3));
        drive(&mut s, recovery);
        assert_eq!(s.unfinished(), 0, "recompute path must recover the waiters");
        let done = collector.take().task_done;
        let d_runs = done.iter().filter(|t| t.key == d).count();
        assert_eq!(d_runs, 2, "d recomputed after its only replica died");
    }

    /// The invariant oracle stays silent across normal operation, fetch
    /// replay, and worker death — and speaks up on a corrupted table.
    #[test]
    fn invariant_oracle_clean_under_faults_and_detects_corruption() {
        let (mut s, _collector, d, g, e) = fetch_rig();
        assert_eq!(s.invariant_violations(), Vec::<String>::new());
        let (w0, w1, w2) = (s.worker_ids()[0], s.worker_ids()[1], s.worker_ids()[2]);
        assert_eq!(s.try_start(w0, Time(0)).as_ref(), Some(&d));
        assert_eq!(s.try_start(w1, Time(0)).as_ref(), Some(&g));
        assert_eq!(s.try_start(w2, Time(0)).as_ref(), Some(&e));
        assert_eq!(s.invariant_violations(), Vec::<String>::new());
        let _ = s.task_finished(&d, w0, ThreadId(1), Time(0), Time(1), 1 << 10);
        let _ = s.task_finished(&g, w1, ThreadId(1), Time(0), Time(1), 1 << 10);
        let _ = s.task_finished(&e, w2, ThreadId(1), Time(0), Time(1), 32 << 30);
        // consumers are mid-fetch on w2: the ledger must be coherent
        assert_eq!(s.invariant_violations(), Vec::<String>::new());
        s.fetch_done(&d, w1, Time(2));
        let _ = s.worker_died(w0, Time(3));
        assert_eq!(s.invariant_violations(), Vec::<String>::new());
        s.fetch_done(&d, w2, Time(4));
        s.fetch_done(&d, w2, Time(5)); // replay
        s.fetch_done(&g, w2, Time(6));
        assert_eq!(s.invariant_violations(), Vec::<String>::new());
        drive(&mut s, Vec::new());
        assert_eq!(s.unfinished(), 0);
        assert_eq!(s.invariant_violations(), Vec::<String>::new());
        // corrupt the table: a replica entry nobody backs
        s.tasks.get_mut(&d).unwrap().who_has.insert(0);
        let violations = s.invariant_violations();
        assert!(
            violations.iter().any(|m| m.contains("who_has")),
            "corruption must be reported: {violations:?}"
        );
    }

    #[test]
    fn cross_graph_dependencies_resolve() {
        let (mut s, _c) = sched(2, 2, SchedulerConfig::default());
        let g0 = chain_graph(3);
        let last = g0.tasks.last().unwrap().key.clone();
        let actions = s.submit_graph(g0, Time::ZERO).unwrap();
        drive(&mut s, actions);
        // second graph depends on first graph's last task
        let mut b = GraphBuilder::new(GraphId(1));
        let tok = b.new_token();
        b.add_sim("follow", tok, 0, vec![last.clone()], SimAction::compute_only(Dur(1), 10));
        let mut ext = Set::new();
        ext.insert(last);
        let actions = s.submit_graph(b.build(&ext).unwrap(), Time(100)).unwrap();
        drive(&mut s, actions);
        assert_eq!(s.unfinished(), 0);
    }
}
