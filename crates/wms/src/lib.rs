//! # dtf-wms
//!
//! A Dask.distributed-analog task-based workflow management system
//! (paper §III-A): a client submits directed acyclic task graphs to a
//! dynamic scheduler, which dispatches tasks to multi-threaded workers,
//! moves dependency data between them, and optionally steals work from
//! busy workers for idle ones.
//!
//! The WMS exists in two execution modes sharing one vocabulary of task
//! graphs, states ([`dtf_core::events::TaskState`]), transitions, and
//! instrumentation plugins:
//!
//! * [`sim`] — a discrete-event simulation of the whole cluster under
//!   virtual time, with stochastic platform costs from `dtf-platform`.
//!   This regenerates the paper's figures at Polaris scale in milliseconds.
//! * [`exec`] — a real multi-threaded executor that runs genuine Rust
//!   closures on worker threads with wall-clock timestamps; this is the
//!   mode a downstream user adopts to characterize their own workloads.
//!
//! Instrumentation mirrors the paper's architecture: scheduler and worker
//! *plugins* ([`plugins`]) intercept state transitions, completions,
//! transfers, and warnings, and stream them to Mofka ([`plugins::MofkaPlugin`])
//! without perturbing scheduling decisions.

pub mod client;
pub mod exec;
pub mod graph;
pub mod plugins;
pub mod rundata;
pub mod scheduler;
pub mod sim;

pub use client::Delayed;
pub use exec::{ExecConfig, LocalCluster};
pub use graph::{GraphBuilder, IoCall, Payload, SimAction, TaskGraph, TaskSpec};
pub use plugins::{CollectorPlugin, MofkaPlugin, WmsPlugin};
pub use rundata::RunData;

pub use scheduler::SchedulerConfig;
pub use sim::{SimCluster, SimConfig, SimWorkflow, SubmitPolicy};
