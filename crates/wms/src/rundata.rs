//! Everything collected from one run, fused from its sources.
//!
//! The paper's data path is: WMS plugins → Mofka topics (in situ), Darshan →
//! per-process binary logs (at shutdown), job/system metadata → provenance
//! chart. [`RunData::drain_from_mofka`] replays the Mofka topics after the
//! run — the post-processing consumer mode — and fuses them with the
//! Darshan log set into one record the analysis engine consumes.
//!
//! For persistent runs the same drain works post-hoc from disk:
//! [`RunData::open_archive`] reopens a store directory read-only and
//! replays the recovered topics through the identical consumer path
//! (same prefetch, fresh consumer group), so a reconstructed `RunData`
//! is byte-identical to the in-memory one for the committed prefix. The
//! non-Mofka half of the record — chart, Darshan logs, wall time — is
//! persisted at finalize under the [`ARCHIVE_META_KEY`] Yokan key.

use serde::{Deserialize, Serialize};
use std::path::Path;

use dtf_core::error::DtfError;
use dtf_core::events::{
    CommEvent, IoRecord, LogEntry, ProvEvent, ProxyEvent, TaskDoneEvent, TaskMetaEvent,
    TransitionEvent, WarningEvent, WorkerTransitionEvent,
};
use dtf_core::ids::{RunId, TaskKey};
use dtf_core::provenance::ProvenanceChart;
use dtf_core::time::{Dur, Time};
use dtf_darshan::log::LogSet;
use dtf_mofka::{ConsumerConfig, Metadata, MofkaService, ServiceRecovery};

/// Yokan key under which a persistent run archives its non-Mofka data.
pub const ARCHIVE_META_KEY: &str = "run-meta";

/// The non-Mofka half of a run record, persisted at finalize so an
/// archive reopen can rebuild a full [`RunData`] from disk alone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchiveMeta {
    pub run: RunId,
    pub workflow: String,
    pub chart: ProvenanceChart,
    pub darshan: LogSet,
    pub wall_time: Dur,
    pub start_order: Vec<(TaskKey, Time)>,
    pub steals: u64,
}

/// All data collected from a single run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunData {
    pub run: RunId,
    pub workflow: String,
    pub chart: ProvenanceChart,
    pub meta: Vec<TaskMetaEvent>,
    pub transitions: Vec<TransitionEvent>,
    pub worker_transitions: Vec<WorkerTransitionEvent>,
    pub task_done: Vec<TaskDoneEvent>,
    pub comms: Vec<CommEvent>,
    pub warnings: Vec<WarningEvent>,
    pub logs: Vec<LogEntry>,
    /// Proxy-plane lifecycle records (empty when the out-of-band data
    /// plane is disabled — the default).
    #[serde(default = "Default::default")]
    pub proxies: Vec<ProxyEvent>,
    pub darshan: LogSet,
    /// I/O records streamed online through Mofka (empty unless the run was
    /// configured with `online_darshan`; never subject to DXT truncation).
    pub online_io: Vec<IoRecord>,
    /// End-to-end wall time of the workflow (incl. coordination).
    pub wall_time: Dur,
    /// Order in which tasks began executing.
    pub start_order: Vec<(TaskKey, Time)>,
    /// Number of work-stealing moves during the run.
    pub steals: u64,
}

impl RunData {
    /// Drain the standard WMS topics of `svc` (consumer group
    /// `"analysis-<run>"`) into typed event vectors, sorted by time.
    #[allow(clippy::too_many_arguments)] // one parameter per fused data source
    pub fn drain_from_mofka(
        svc: &MofkaService,
        run: RunId,
        workflow: String,
        chart: ProvenanceChart,
        darshan: LogSet,
        wall_time: Dur,
        start_order: Vec<(TaskKey, Time)>,
        steals: u64,
    ) -> dtf_core::Result<Self> {
        let group = format!("analysis-{run}");
        let meta = ArchiveMeta { run, workflow, chart, darshan, wall_time, start_order, steals };
        Self::drain_with_group(svc, &group, meta)
    }

    /// Rebuild a run record from a persisted store directory, read-only.
    /// The drain uses a fresh consumer group (`"archive-<run>"` — the
    /// original run's group offsets are themselves persisted) but the
    /// same consumer configuration as the in-situ path, so event order is
    /// identical. Also returns what recovery found on the way in.
    pub fn open_archive(dir: &Path) -> dtf_core::Result<(Self, ServiceRecovery)> {
        let (svc, recovery) = MofkaService::reopen(dir)?;
        let raw = svc.yokan().get(ARCHIVE_META_KEY).ok_or_else(|| {
            DtfError::NotFound(format!("{ARCHIVE_META_KEY} in archive {}", dir.display()))
        })?;
        let meta: ArchiveMeta = serde_json::from_slice(&raw)?;
        let group = format!("archive-{}", meta.run);
        let data = Self::drain_with_group(&svc, &group, meta)?;
        Ok((data, recovery))
    }

    /// The one drain implementation both the in-situ and archive paths
    /// share — any divergence here would break byte-identical replay.
    fn drain_with_group(
        svc: &MofkaService,
        group: &str,
        archive: ArchiveMeta,
    ) -> dtf_core::Result<Self> {
        let ArchiveMeta { run, workflow, chart, darshan, wall_time, start_order, steals } = archive;
        fn drain<T: ProvEvent + serde::Deserialize>(
            svc: &MofkaService,
            topic: &str,
            group: &str,
        ) -> dtf_core::Result<Vec<T>> {
            let mut consumer =
                svc.consumer(topic, ConsumerConfig { group: group.to_string(), prefetch: 4096 })?;
            let mut out = Vec::new();
            for stored in consumer.drain_all()? {
                match stored.event.metadata {
                    // typed path: take the record out of its Arc (cloning
                    // only if the log still shares it) — no JSON involved
                    Metadata::Typed(rec) => {
                        let rec = std::sync::Arc::try_unwrap(rec).unwrap_or_else(|a| (*a).clone());
                        out.push(T::from_record(rec).ok_or_else(|| {
                            DtfError::IllegalState(format!(
                                "topic {topic} carried a record of the wrong family"
                            ))
                        })?);
                    }
                    // Genuine fallback, not a detour for typed records:
                    // WMS plugins push typed and binary slots restore
                    // typed, so only generic producers (or JSON-era
                    // stores) ever land here — and they pay the one
                    // from_value parse their representation requires.
                    Metadata::Json(v) => out.push(serde_json::from_value(v)?),
                }
            }
            Ok(out)
        }
        let mut meta: Vec<TaskMetaEvent> = drain(svc, "task-meta", group)?;
        let mut transitions: Vec<TransitionEvent> = drain(svc, "task-transitions", group)?;
        let mut worker_transitions: Vec<WorkerTransitionEvent> =
            drain(svc, "worker-transitions", group)?;
        let mut task_done: Vec<TaskDoneEvent> = drain(svc, "task-done", group)?;
        let mut comms: Vec<CommEvent> = drain(svc, "comm-events", group)?;
        let mut warnings: Vec<WarningEvent> = drain(svc, "warnings", group)?;
        let mut logs: Vec<LogEntry> = drain(svc, "logs", group)?;
        let mut online_io: Vec<IoRecord> = drain(svc, "io-records", group)?;
        // archives written before the proxy plane existed have no
        // proxy-events topic; treat that exactly like an empty one
        let mut proxies: Vec<ProxyEvent> = match drain(svc, "proxy-events", group) {
            Ok(v) => v,
            Err(DtfError::NotFound(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        meta.sort_by_key(|e| (e.submitted, e.key.clone()));
        transitions.sort_by_key(|e| e.time);
        worker_transitions.sort_by_key(|e| (e.time, e.key.clone()));
        task_done.sort_by_key(|e| (e.stop, e.start));
        comms.sort_by_key(|e| e.start);
        warnings.sort_by_key(|e| e.time);
        logs.sort_by_key(|e| e.time);
        online_io.sort_by_key(|e| (e.start, e.thread));
        proxies.sort_by_key(|e| (e.time, e.key.clone(), e.generation));
        Ok(Self {
            run,
            workflow,
            chart,
            meta,
            transitions,
            worker_transitions,
            task_done,
            comms,
            warnings,
            logs,
            proxies,
            darshan,
            online_io,
            wall_time,
            start_order,
            steals,
        })
    }

    /// Number of distinct tasks that completed at least once.
    pub fn distinct_tasks(&self) -> usize {
        let keys: std::collections::HashSet<&TaskKey> =
            self.task_done.iter().map(|d| &d.key).collect();
        keys.len()
    }

    /// Distinct task graphs observed.
    pub fn task_graphs(&self) -> usize {
        let ids: std::collections::HashSet<u32> =
            self.task_done.iter().map(|d| d.graph.0).collect();
        ids.len()
    }

    /// Distinct files touched (from Darshan counters — complete even under
    /// DXT truncation).
    pub fn distinct_files(&self) -> usize {
        self.darshan.distinct_files()
    }

    /// I/O operations traced by DXT (the quantity the paper's Table I
    /// reports; undercounts when buffers truncated — footnote 9).
    pub fn io_ops(&self) -> u64 {
        self.darshan.traced_data_ops()
    }

    /// Complete I/O operation count from the counters module.
    pub fn io_ops_complete(&self) -> u64 {
        self.darshan.total_data_ops()
    }

    /// Number of inter-worker communications.
    pub fn comm_count(&self) -> usize {
        self.comms.len()
    }

    /// Sum of time spent in I/O operations (Fig. 3 "I/O" bar).
    pub fn io_time(&self) -> Dur {
        self.darshan.total_io_time()
    }

    /// Sum of time spent in incoming communications (Fig. 3 "comm" bar).
    pub fn comm_time(&self) -> Dur {
        let mut t = Dur::ZERO;
        for c in &self.comms {
            t += c.duration();
        }
        t
    }

    /// Per-task wait between becoming ready on a worker and starting to
    /// execute (the "time spent in a worker before execution" the paper
    /// collects worker-side transitions for).
    pub fn queue_waits(&self) -> Vec<(TaskKey, Dur)> {
        use dtf_core::events::WorkerTaskState as W;
        let mut ready_at: std::collections::HashMap<&TaskKey, Time> = Default::default();
        let mut waits = Vec::new();
        for t in &self.worker_transitions {
            match (t.from, t.to) {
                (_, W::Ready) => {
                    ready_at.insert(&t.key, t.time);
                }
                (W::Ready, W::Executing) => {
                    if let Some(r) = ready_at.get(&t.key) {
                        waits.push((t.key.clone(), t.time - *r));
                    }
                }
                _ => {}
            }
        }
        waits
    }

    /// Sum of task execution time (Fig. 3 "compute" bar). Task execution
    /// includes its in-task I/O; the paper notes the phases are
    /// non-exclusive and may overlap.
    pub fn compute_time(&self) -> Dur {
        let mut t = Dur::ZERO;
        for d in &self.task_done {
            t += d.duration();
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtf_core::events::{Location, Stimulus, TaskState};
    use dtf_core::ids::{GraphId, NodeId, ThreadId, WorkerId};
    use dtf_core::provenance::{HardwareInfo, JobInfo, SystemInfo, WmsConfig};
    use dtf_mofka::bedrock::BedrockConfig;
    use dtf_mofka::producer::ProducerConfig;

    fn chart() -> ProvenanceChart {
        ProvenanceChart {
            hardware: HardwareInfo::polaris_like(2),
            system: SystemInfo::synthetic(),
            job: JobInfo {
                job_id: 1,
                script: String::new(),
                queue: "q".into(),
                nodes_requested: 2,
                allocated_nodes: vec![NodeId(0), NodeId(1)],
                submit_time: Time::ZERO,
                start_time: Time::ZERO,
                walltime_limit_s: 60,
            },
            wms_config: WmsConfig::default(),
            client_code_hash: 0,
            workflow_name: "test".into(),
        }
    }

    #[test]
    fn drain_from_mofka_fuses_and_sorts() {
        let svc = BedrockConfig::wms_default().bootstrap().unwrap();
        {
            use crate::plugins::{MofkaPlugin, WmsPlugin};
            let mut plugin = MofkaPlugin::new(&svc, ProducerConfig::default()).unwrap();
            let w = WorkerId::new(NodeId(0), 0);
            for (i, t) in [5u64, 2, 9].iter().enumerate() {
                plugin.on_transition(&TransitionEvent {
                    key: TaskKey::new("x", 0, i as u32),
                    graph: GraphId(0),
                    from: TaskState::Released,
                    to: TaskState::Waiting,
                    stimulus: Stimulus::GraphSubmitted,
                    location: Location::Scheduler,
                    time: Time(*t),
                });
            }
            plugin.on_task_done(&TaskDoneEvent {
                key: TaskKey::new("x", 0, 0),
                graph: GraphId(0),
                worker: w,
                thread: ThreadId(1),
                start: Time(0),
                stop: Time(10),
                nbytes: 4,
            });
            plugin.flush();
        }
        let data = RunData::drain_from_mofka(
            &svc,
            RunId(0),
            "test".into(),
            chart(),
            LogSet::default(),
            Dur::from_secs_f64(1.0),
            vec![],
            0,
        )
        .unwrap();
        assert_eq!(data.transitions.len(), 3);
        let times: Vec<u64> = data.transitions.iter().map(|t| t.time.0).collect();
        assert_eq!(times, vec![2, 5, 9], "sorted by time");
        assert_eq!(data.task_done.len(), 1);
        assert_eq!(data.distinct_tasks(), 1);
        assert_eq!(data.task_graphs(), 1);
        assert!(data.compute_time() > Dur::ZERO);
    }

    /// The `Metadata::Json` fallback of the drain: a generic producer
    /// appending a JSON value tree (no typed record anywhere) must still
    /// come out of the drain as a typed event via `from_value`.
    #[test]
    fn json_metadata_fallback_drains_through_from_value() {
        use dtf_core::events::{LogEntry, LogLevel, LogSource, ProvRecord};
        use dtf_mofka::Event;
        let svc = BedrockConfig::wms_default().bootstrap().unwrap();
        let entry = LogEntry {
            time: Time(321),
            level: LogLevel::Error,
            source: LogSource::Scheduler,
            message: "generic producer".into(),
        };
        // append the value tree, not the record: this is what a non-WMS
        // producer without the typed schema would push
        let value = ProvRecord::Log(entry.clone()).to_value();
        svc.topic("logs").unwrap().append_batch(0, vec![Event::meta_only(value)]).unwrap();
        let data = RunData::drain_from_mofka(
            &svc,
            RunId(2),
            "json-fallback".into(),
            chart(),
            LogSet::default(),
            Dur::ZERO,
            vec![],
            0,
        )
        .unwrap();
        assert_eq!(data.logs, vec![entry], "the JSON fallback must be parsed, not dropped");
    }

    #[test]
    fn metrics_on_empty_run_are_zero() {
        let svc = BedrockConfig::wms_default().bootstrap().unwrap();
        let data = RunData::drain_from_mofka(
            &svc,
            RunId(1),
            "empty".into(),
            chart(),
            LogSet::default(),
            Dur::ZERO,
            vec![],
            0,
        )
        .unwrap();
        assert_eq!(data.distinct_tasks(), 0);
        assert_eq!(data.io_ops(), 0);
        assert_eq!(data.comm_count(), 0);
        assert_eq!(data.comm_time(), Dur::ZERO);
    }
}
