//! A `dask.delayed`-style client API over the real executor.
//!
//! [`Delayed`] buffers task definitions; [`Delayed::compute`] submits them
//! as one graph to a [`LocalCluster`](crate::exec::LocalCluster) — the
//! lower-level decorators-and-futures style of writing Dask programs
//! (paper §III-A).

use std::collections::HashSet;
use std::sync::Arc;

use dtf_core::error::Result;
use dtf_core::ids::{GraphId, TaskKey};

use crate::exec::LocalCluster;
use crate::graph::{GraphBuilder, Payload, TaskValue};

/// A deferred task-graph builder bound to a cluster.
pub struct Delayed<'c> {
    cluster: &'c LocalCluster,
    builder: GraphBuilder,
    /// Keys from previously computed graphs this graph may depend on.
    external: HashSet<TaskKey>,
    next_graph: u32,
}

impl<'c> Delayed<'c> {
    pub fn new(cluster: &'c LocalCluster) -> Self {
        Self {
            cluster,
            builder: GraphBuilder::new(GraphId(0)),
            external: HashSet::new(),
            next_graph: 0,
        }
    }

    /// Define a deferred task. `prefix` names its category; dependencies'
    /// outputs arrive in `deps` order.
    pub fn delayed<F>(&mut self, prefix: &str, deps: Vec<TaskKey>, f: F) -> TaskKey
    where
        F: Fn(&[Arc<TaskValue>]) -> TaskValue + Send + Sync + 'static,
    {
        let token = self.builder.new_token();
        let index = self.builder.len() as u32;
        self.builder.add(TaskKey::new(prefix, token, index), deps, Payload::Real(Arc::new(f)))
    }

    /// Submit everything buffered since the last `compute` as one graph.
    pub fn compute(&mut self) -> Result<()> {
        self.next_graph += 1;
        let builder =
            std::mem::replace(&mut self.builder, GraphBuilder::new(GraphId(self.next_graph)));
        if builder.is_empty() {
            return Ok(());
        }
        let graph = builder.build(&self.external)?;
        for t in &graph.tasks {
            self.external.insert(t.key.clone());
        }
        self.cluster.submit(graph)
    }

    /// Compute (if needed) and fetch one result.
    pub fn gather(&mut self, key: &TaskKey) -> Result<Arc<TaskValue>> {
        if !self.builder.is_empty() {
            self.compute()?;
        }
        self.cluster.gather(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;
    use crate::plugins::PluginSet;

    #[test]
    fn delayed_pipeline_computes() {
        let cluster = LocalCluster::start(ExecConfig::default(), PluginSet::new());
        let mut client = Delayed::new(&cluster);
        let a = client.delayed("load", vec![], |_| TaskValue::new(10i64, 8));
        let b = client.delayed("load", vec![], |_| TaskValue::new(32i64, 8));
        let s = client.delayed("sum", vec![a, b], |deps| {
            let x = deps[0].downcast_ref::<i64>().unwrap();
            let y = deps[1].downcast_ref::<i64>().unwrap();
            TaskValue::new(x + y, 8)
        });
        let v = client.gather(&s).unwrap();
        assert_eq!(*v.downcast_ref::<i64>().unwrap(), 42);
        cluster.shutdown();
    }

    #[test]
    fn two_computes_chain_across_graphs() {
        let cluster = LocalCluster::start(ExecConfig::default(), PluginSet::new());
        let mut client = Delayed::new(&cluster);
        let base = client.delayed("base", vec![], |_| TaskValue::new(5i64, 8));
        client.compute().unwrap();
        let doubled = client.delayed("double", vec![base], |deps| {
            TaskValue::new(deps[0].downcast_ref::<i64>().unwrap() * 2, 8)
        });
        let v = client.gather(&doubled).unwrap();
        assert_eq!(*v.downcast_ref::<i64>().unwrap(), 10);
        cluster.shutdown();
    }

    #[test]
    fn empty_compute_is_noop() {
        let cluster = LocalCluster::start(ExecConfig::default(), PluginSet::new());
        let mut client = Delayed::new(&cluster);
        client.compute().unwrap();
        cluster.shutdown();
    }
}
