//! Task graphs: the unit of submission.
//!
//! A workflow is one or more directed acyclic graphs whose nodes are tasks
//! and whose edges are data dependencies (paper §III-A). Dependencies may
//! reference tasks of *previously submitted* graphs whose outputs are still
//! in distributed memory (XGBoost submits 74 such chained graphs).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dtf_core::error::{DtfError, Result};
use dtf_core::ids::{FileId, GraphId, TaskKey};
use dtf_core::time::Dur;

/// One I/O call a simulated task performs, in order, during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoCall {
    pub file: FileId,
    /// `true` = write, `false` = read.
    pub write: bool,
    pub offset: u64,
    pub size: u64,
}

impl IoCall {
    pub fn read(file: FileId, offset: u64, size: u64) -> Self {
        Self { file, write: false, offset, size }
    }

    pub fn write(file: FileId, offset: u64, size: u64) -> Self {
        Self { file, write: true, offset, size }
    }
}

/// What a simulated task does: its cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct SimAction {
    /// Base compute time (before node-profile and stochastic factors).
    pub compute: Dur,
    /// I/O calls issued sequentially at the start of execution. The first
    /// call on a file implies an `open`; a final `close` is charged when the
    /// task's last call on that file completes.
    pub io: Vec<IoCall>,
    /// Size of the task's output kept in distributed memory (Dask nbytes).
    pub output_nbytes: u64,
    /// Memory-manager pressure of this task: expected event-loop /GC stalls
    /// per second while it executes (drives the paper's Fig. 7 warnings;
    /// large unmanaged outputs pressure the worker's event loop).
    pub stall_rate: f64,
}

impl SimAction {
    pub fn compute_only(compute: Dur, output_nbytes: u64) -> Self {
        Self { compute, io: Vec::new(), output_nbytes, stall_rate: 0.0 }
    }
}

/// A real task body: runs on a worker thread, receives its dependencies'
/// outputs in dependency order, returns its own output.
pub type RealFn = Arc<dyn Fn(&[Arc<TaskValue>]) -> TaskValue + Send + Sync>;

/// Output of a real task. `data` is the actual value; `nbytes` is what the
/// scheduler accounts for placement (Dask's `sizeof`).
pub struct TaskValue {
    pub data: Box<dyn std::any::Any + Send + Sync>,
    pub nbytes: u64,
}

impl TaskValue {
    pub fn new<T: std::any::Any + Send + Sync>(data: T, nbytes: u64) -> Self {
        Self { data: Box::new(data), nbytes }
    }

    pub fn downcast_ref<T: std::any::Any>(&self) -> Option<&T> {
        self.data.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for TaskValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskValue({} bytes)", self.nbytes)
    }
}

/// The body of a task: a cost model (sim mode) or a closure (real mode).
#[derive(Clone)]
pub enum Payload {
    Sim(SimAction),
    Real(RealFn),
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Sim(a) => f.debug_tuple("Sim").field(a).finish(),
            Payload::Real(_) => f.write_str("Real(<fn>)"),
        }
    }
}

/// One task in a graph.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    pub key: TaskKey,
    pub deps: Vec<TaskKey>,
    pub payload: Payload,
}

/// A validated DAG of tasks.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    pub id: GraphId,
    pub tasks: Vec<TaskSpec>,
}

impl TaskGraph {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Validate: unique keys, no dependency cycles, and every dependency
    /// either internal or in `external` (outputs of earlier graphs).
    pub fn validate(&self, external: &HashSet<TaskKey>) -> Result<()> {
        let mut keys = HashSet::with_capacity(self.tasks.len());
        for t in &self.tasks {
            if !keys.insert(&t.key) {
                return Err(DtfError::InvalidGraph(format!("duplicate key {}", t.key)));
            }
        }
        for t in &self.tasks {
            for d in &t.deps {
                if !keys.contains(d) && !external.contains(d) {
                    return Err(DtfError::InvalidGraph(format!(
                        "task {} depends on unknown {d}",
                        t.key
                    )));
                }
            }
        }
        // Kahn's algorithm over internal edges for cycle detection
        let index: HashMap<&TaskKey, usize> =
            self.tasks.iter().enumerate().map(|(i, t)| (&t.key, i)).collect();
        let mut indeg = vec![0usize; self.tasks.len()];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            for d in &t.deps {
                if let Some(&j) = index.get(d) {
                    indeg[i] += 1;
                    dependents[j].push(i);
                }
            }
        }
        let mut queue: Vec<usize> =
            indeg.iter().enumerate().filter(|(_, &d)| d == 0).map(|(i, _)| i).collect();
        let mut seen = 0;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &j in &dependents[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if seen != self.tasks.len() {
            return Err(DtfError::InvalidGraph(format!(
                "graph {} contains a dependency cycle",
                self.id
            )));
        }
        Ok(())
    }
}

/// Convenience builder for task graphs.
#[derive(Debug)]
pub struct GraphBuilder {
    id: GraphId,
    tasks: Vec<TaskSpec>,
    token_counter: u32,
}

impl GraphBuilder {
    pub fn new(id: GraphId) -> Self {
        Self { id, tasks: Vec::new(), token_counter: 0 }
    }

    /// Allocate a fresh group token (one per collection operation).
    pub fn new_token(&mut self) -> u32 {
        self.token_counter += 1;
        // fold the graph id in so tokens are globally distinct
        self.token_counter.wrapping_add(self.id.0.wrapping_mul(0x1_0000))
    }

    pub fn add(&mut self, key: TaskKey, deps: Vec<TaskKey>, payload: Payload) -> TaskKey {
        self.tasks.push(TaskSpec { key: key.clone(), deps, payload });
        key
    }

    /// Add a simulated task with a fresh key in group `(prefix, token)`.
    pub fn add_sim(
        &mut self,
        prefix: &str,
        token: u32,
        index: u32,
        deps: Vec<TaskKey>,
        action: SimAction,
    ) -> TaskKey {
        self.add(TaskKey::new(prefix, token, index), deps, Payload::Sim(action))
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Finish and validate against `external` keys.
    pub fn build(self, external: &HashSet<TaskKey>) -> Result<TaskGraph> {
        let g = TaskGraph { id: self.id, tasks: self.tasks };
        g.validate(external)?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Payload {
        Payload::Sim(SimAction::compute_only(Dur::from_millis_f64(1.0), 8))
    }

    #[test]
    fn valid_chain_builds() {
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        let a = b.add_sim("load", tok, 0, vec![], SimAction::compute_only(Dur(1), 8));
        let c = b.add_sim("transform", tok, 0, vec![a.clone()], SimAction::compute_only(Dur(1), 8));
        b.add_sim("predict", tok, 0, vec![c], SimAction::compute_only(Dur(1), 8));
        let g = b.build(&HashSet::new()).unwrap();
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut b = GraphBuilder::new(GraphId(0));
        b.add(TaskKey::new("x", 0, 0), vec![], sim());
        b.add(TaskKey::new("x", 0, 0), vec![], sim());
        assert!(matches!(b.build(&HashSet::new()), Err(DtfError::InvalidGraph(_))));
    }

    #[test]
    fn unknown_dependency_rejected() {
        let mut b = GraphBuilder::new(GraphId(0));
        b.add(TaskKey::new("x", 0, 0), vec![TaskKey::new("ghost", 0, 0)], sim());
        assert!(b.build(&HashSet::new()).is_err());
    }

    #[test]
    fn external_dependency_accepted() {
        let prev = TaskKey::new("prev", 9, 0);
        let mut external = HashSet::new();
        external.insert(prev.clone());
        let mut b = GraphBuilder::new(GraphId(1));
        b.add(TaskKey::new("x", 0, 0), vec![prev], sim());
        assert!(b.build(&external).is_ok());
    }

    #[test]
    fn cycle_rejected() {
        let ka = TaskKey::new("a", 0, 0);
        let kb = TaskKey::new("b", 0, 0);
        let g = TaskGraph {
            id: GraphId(0),
            tasks: vec![
                TaskSpec { key: ka.clone(), deps: vec![kb.clone()], payload: sim() },
                TaskSpec { key: kb, deps: vec![ka], payload: sim() },
            ],
        };
        let err = g.validate(&HashSet::new()).unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn self_dependency_is_a_cycle() {
        let k = TaskKey::new("a", 0, 0);
        let g = TaskGraph {
            id: GraphId(0),
            tasks: vec![TaskSpec { key: k.clone(), deps: vec![k], payload: sim() }],
        };
        assert!(g.validate(&HashSet::new()).is_err());
    }

    #[test]
    fn tokens_are_distinct_across_graphs() {
        let mut b0 = GraphBuilder::new(GraphId(0));
        let mut b1 = GraphBuilder::new(GraphId(1));
        assert_ne!(b0.new_token(), b1.new_token());
    }

    #[test]
    fn diamond_is_valid() {
        let mut b = GraphBuilder::new(GraphId(0));
        let t = b.new_token();
        let a = b.add_sim("src", t, 0, vec![], SimAction::compute_only(Dur(1), 8));
        let l = b.add_sim("left", t, 0, vec![a.clone()], SimAction::compute_only(Dur(1), 8));
        let r = b.add_sim("right", t, 0, vec![a], SimAction::compute_only(Dur(1), 8));
        b.add_sim("join", t, 0, vec![l, r], SimAction::compute_only(Dur(1), 8));
        assert!(b.build(&HashSet::new()).is_ok());
    }
}
