//! The real executor: genuine Rust closures on real worker threads.
//!
//! [`LocalCluster`] spins up `workers × threads_per_worker` OS threads that
//! share the same [`Scheduler`](crate::scheduler::Scheduler) state machine
//! the simulator uses — same placement heuristic, same queuing, same
//! stealing, same plugin instrumentation — but under a monotonic wall
//! clock, executing [`Payload::Real`] closures and passing real values
//! between tasks. This is the mode a downstream user adopts to
//! characterize their own workload.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dtf_core::error::{DtfError, Result};
use dtf_core::events::{CommEvent, TaskState};
use dtf_core::ids::{NodeId, TaskKey, ThreadId, WorkerId};
use dtf_core::time::{Clock, Dur, RealClock, Time};

use crate::graph::{Payload, TaskGraph, TaskValue};
use crate::plugins::PluginSet;
use crate::scheduler::{Action, Scheduler, SchedulerConfig};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Number of (emulated) worker processes.
    pub workers: u32,
    /// Threads per worker.
    pub threads_per_worker: u32,
    pub scheduler: SchedulerConfig,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self { workers: 2, threads_per_worker: 2, scheduler: SchedulerConfig::default() }
    }
}

struct Shared {
    scheduler: Mutex<Scheduler>,
    data: Mutex<HashMap<TaskKey, Arc<TaskValue>>>,
    clock: RealClock,
    work: Condvar,
    work_mutex: Mutex<()>,
    /// Signalled (paired with the scheduler mutex) after every scheduler
    /// state change; `gather`/`wait_all` block on it instead of polling.
    progress: Condvar,
    stop: AtomicBool,
}

/// A running local cluster.
pub struct LocalCluster {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    worker_ids: Vec<WorkerId>,
}

impl LocalCluster {
    /// Start the cluster with the given instrumentation plugins.
    pub fn start(cfg: ExecConfig, plugins: PluginSet) -> Self {
        assert!(cfg.workers >= 1 && cfg.threads_per_worker >= 1);
        let mut scheduler = Scheduler::new(cfg.scheduler.clone(), plugins);
        let mut worker_ids = Vec::new();
        for w in 0..cfg.workers {
            // all workers share one node in-process; slots distinguish them
            let id = WorkerId::new(NodeId(0), w);
            scheduler.add_worker(id, cfg.threads_per_worker);
            worker_ids.push(id);
        }
        let shared = Arc::new(Shared {
            scheduler: Mutex::new(scheduler),
            data: Mutex::new(HashMap::new()),
            clock: RealClock::new(),
            work: Condvar::new(),
            work_mutex: Mutex::new(()),
            progress: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let mut handles = Vec::new();
        for (widx, wid) in worker_ids.iter().enumerate() {
            for t in 0..cfg.threads_per_worker {
                let shared = shared.clone();
                let wid = *wid;
                let _ = widx;
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("dtf-worker-{}-{t}", wid.slot))
                        .spawn(move || worker_loop(shared, wid, t))
                        .expect("spawn worker thread"),
                );
            }
        }
        Self { shared, handles, worker_ids }
    }

    pub fn worker_ids(&self) -> &[WorkerId] {
        &self.worker_ids
    }

    fn now(&self) -> Time {
        self.shared.clock.now()
    }

    /// Submit a graph of real tasks.
    pub fn submit(&self, graph: TaskGraph) -> Result<()> {
        for t in &graph.tasks {
            if matches!(t.payload, Payload::Sim(_)) {
                return Err(DtfError::Config(format!(
                    "task {} has a Sim payload; the real executor runs Real payloads",
                    t.key
                )));
            }
        }
        let now = self.now();
        let mut sched = self.shared.scheduler.lock();
        let actions = sched.submit_graph(graph, now)?;
        process_fetches(&self.shared, &mut sched, actions, now);
        drop(sched);
        self.shared.work.notify_all();
        self.shared.progress.notify_all();
        Ok(())
    }

    /// Block until `key` is in memory (or the cluster stopped); return its
    /// value. Sleeps on the progress condvar — woken by workers as tasks
    /// finish — rather than polling the scheduler.
    pub fn gather(&self, key: &TaskKey) -> Result<Arc<TaskValue>> {
        let mut sched = self.shared.scheduler.lock();
        loop {
            match sched.task_state(key) {
                None => return Err(DtfError::NotFound(format!("task {key}"))),
                Some(TaskState::Memory) => break,
                Some(TaskState::Erred) => {
                    return Err(DtfError::IllegalState(format!("task {key} erred")))
                }
                _ => {}
            }
            // the timeout is only a safety net against a stalled cluster
            self.shared.progress.wait_for(&mut sched, std::time::Duration::from_millis(100));
        }
        drop(sched);
        let data = self.shared.data.lock();
        data.get(key).cloned().ok_or_else(|| DtfError::NotFound(format!("value of {key}")))
    }

    /// Block until every submitted task reached a terminal state.
    pub fn wait_all(&self) {
        let mut sched = self.shared.scheduler.lock();
        while sched.unfinished() != 0 {
            self.shared.progress.wait_for(&mut sched, std::time::Duration::from_millis(100));
        }
    }

    /// Stop the workers and return the scheduler's plugin set (with all
    /// collected instrumentation).
    pub fn shutdown(self) -> PluginSet {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.work.notify_all();
        self.shared.progress.notify_all();
        for h in self.handles {
            let _ = h.join();
        }
        let scheduler = std::mem::replace(
            &mut *self.shared.scheduler.lock(),
            Scheduler::new(SchedulerConfig::default(), PluginSet::new()),
        );
        let mut plugins = scheduler.into_plugins();
        use crate::plugins::WmsPlugin;
        plugins.flush();
        plugins
    }
}

fn process_fetches(shared: &Shared, sched: &mut Scheduler, actions: Vec<Action>, now: Time) {
    // in-process "transfers": data is already shared; record the comm event
    // with a measured (near-zero) duration and complete it immediately
    for action in actions {
        match action {
            Action::Fetch { dep, from, to, nbytes } => {
                use crate::plugins::WmsPlugin;
                let stop = shared.clock.now();
                sched.plugins_mut().on_comm(&CommEvent {
                    key: dep.clone(),
                    from,
                    to,
                    nbytes,
                    start: now,
                    stop: stop.max(now + Dur(1)),
                });
                sched.fetch_done(&dep, to, stop);
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>, wid: WorkerId, thread_ordinal: u32) {
    let tid = ThreadId::synth(wid, thread_ordinal);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // try to pick up work
        let picked = {
            let now = shared.clock.now();
            let mut sched = shared.scheduler.lock();
            let key = sched.try_start(wid, now);
            if key.is_none() {
                // idle: opportunistically rebalance (work stealing)
                let actions = sched.rebalance(now);
                process_fetches(&shared, &mut sched, actions, now);
                sched.try_start(wid, now)
            } else {
                key
            }
        };
        let Some(key) = picked else {
            // nothing to run: wait for a notification
            let mut guard = shared.work_mutex.lock();
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            shared.work.wait_for(&mut guard, std::time::Duration::from_millis(5));
            continue;
        };

        // gather the payload and dependency values
        let (func, deps) = {
            let sched = shared.scheduler.lock();
            let payload = sched.payload(&key).expect("started task has payload");
            let func = match payload {
                Payload::Real(f) => f.clone(),
                Payload::Sim(_) => unreachable!("submit() rejects Sim payloads"),
            };
            let deps = sched.task_deps(&key).expect("known task");
            (func, deps)
        };
        let dep_values: Vec<Arc<TaskValue>> = {
            let data = shared.data.lock();
            deps.iter().map(|d| data.get(d).cloned().expect("dependency value resident")).collect()
        };

        let start = shared.clock.now();
        let value = func(&dep_values);
        let stop = shared.clock.now();
        let nbytes = value.nbytes;

        {
            let mut data = shared.data.lock();
            data.insert(key.clone(), Arc::new(value));
        }
        {
            let mut sched = shared.scheduler.lock();
            let actions = sched.task_finished(&key, wid, tid, start, stop, nbytes);
            process_fetches(&shared, &mut sched, actions, stop);
        }
        shared.work.notify_all();
        shared.progress.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::plugins::CollectorPlugin;
    use dtf_core::ids::GraphId;
    use std::collections::HashSet;

    fn real_fn<F>(f: F) -> Payload
    where
        F: Fn(&[Arc<TaskValue>]) -> TaskValue + Send + Sync + 'static,
    {
        Payload::Real(Arc::new(f))
    }

    fn cluster_with_collector(cfg: ExecConfig) -> (LocalCluster, CollectorPlugin) {
        let collector = CollectorPlugin::new();
        let mut plugins = PluginSet::new();
        plugins.register(Box::new(collector.clone()));
        (LocalCluster::start(cfg, plugins), collector)
    }

    #[test]
    fn executes_a_real_dag_and_gathers_result() {
        let (cluster, collector) = cluster_with_collector(ExecConfig::default());
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        let a = b.add(TaskKey::new("two", tok, 0), vec![], real_fn(|_| TaskValue::new(2i64, 8)));
        let c = b.add(TaskKey::new("three", tok, 0), vec![], real_fn(|_| TaskValue::new(3i64, 8)));
        let sum = b.add(
            TaskKey::new("sum", tok, 0),
            vec![a, c],
            real_fn(|deps| {
                let x: i64 = *deps[0].downcast_ref::<i64>().unwrap();
                let y: i64 = *deps[1].downcast_ref::<i64>().unwrap();
                TaskValue::new(x + y, 8)
            }),
        );
        cluster.submit(b.build(&HashSet::new()).unwrap()).unwrap();
        let v = cluster.gather(&sum).unwrap();
        assert_eq!(*v.downcast_ref::<i64>().unwrap(), 5);
        cluster.wait_all();
        cluster.shutdown();
        let events = collector.take();
        assert_eq!(events.task_done.len(), 3);
        // durations are real (monotone, nonnegative) and workers are recorded
        for d in &events.task_done {
            assert!(d.stop >= d.start);
        }
    }

    #[test]
    fn wide_fanout_uses_multiple_threads() {
        let (cluster, collector) = cluster_with_collector(ExecConfig {
            workers: 2,
            threads_per_worker: 2,
            scheduler: SchedulerConfig::default(),
        });
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        for i in 0..32 {
            b.add(
                TaskKey::new("busy", tok, i),
                vec![],
                real_fn(|_| {
                    // a real bit of work
                    let mut acc = 0u64;
                    for j in 0..200_000u64 {
                        acc = acc.wrapping_mul(31).wrapping_add(j);
                    }
                    TaskValue::new(acc, 8)
                }),
            );
        }
        cluster.submit(b.build(&HashSet::new()).unwrap()).unwrap();
        cluster.wait_all();
        cluster.shutdown();
        let events = collector.take();
        assert_eq!(events.task_done.len(), 32);
        let threads: HashSet<u64> = events.task_done.iter().map(|d| d.thread.0).collect();
        assert!(threads.len() >= 2, "expected parallel execution, got {} threads", threads.len());
    }

    #[test]
    fn sim_payload_rejected() {
        let (cluster, _c) = cluster_with_collector(ExecConfig::default());
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        b.add_sim("x", tok, 0, vec![], crate::graph::SimAction::compute_only(Dur(1), 1));
        let err = cluster.submit(b.build(&HashSet::new()).unwrap());
        assert!(err.is_err());
        cluster.shutdown();
    }

    #[test]
    fn gather_unknown_key_errors() {
        let (cluster, _c) = cluster_with_collector(ExecConfig::default());
        assert!(cluster.gather(&TaskKey::new("ghost", 0, 0)).is_err());
        cluster.shutdown();
    }

    #[test]
    fn cross_graph_dependency_executes() {
        let (cluster, _c) = cluster_with_collector(ExecConfig::default());
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        let base =
            b.add(TaskKey::new("base", tok, 0), vec![], real_fn(|_| TaskValue::new(21i64, 8)));
        cluster.submit(b.build(&HashSet::new()).unwrap()).unwrap();
        cluster.gather(&base).unwrap();

        let mut b2 = GraphBuilder::new(GraphId(1));
        let tok2 = b2.new_token();
        let double = b2.add(
            TaskKey::new("double", tok2, 0),
            vec![base.clone()],
            real_fn(|deps| TaskValue::new(deps[0].downcast_ref::<i64>().unwrap() * 2, 8)),
        );
        let mut ext = HashSet::new();
        ext.insert(base);
        cluster.submit(b2.build(&ext).unwrap()).unwrap();
        let v = cluster.gather(&double).unwrap();
        assert_eq!(*v.downcast_ref::<i64>().unwrap(), 42);
        cluster.shutdown();
    }

    #[test]
    fn comm_events_recorded_for_remote_dependencies() {
        let (cluster, collector) = cluster_with_collector(ExecConfig {
            workers: 2,
            threads_per_worker: 1,
            scheduler: SchedulerConfig { work_stealing: false, ..Default::default() },
        });
        let mut b = GraphBuilder::new(GraphId(0));
        let tok = b.new_token();
        // two roots run in parallel on different workers, then a join
        let mk_busy = || {
            real_fn(|_| {
                let mut acc = 0u64;
                for j in 0..2_000_000u64 {
                    acc = acc.wrapping_mul(31).wrapping_add(j);
                }
                TaskValue::new(acc, 1 << 20)
            })
        };
        let a = b.add(TaskKey::new("rootA", tok, 0), vec![], mk_busy());
        let c = b.add(TaskKey::new("rootB", tok, 1), vec![], mk_busy());
        let join = b.add(
            TaskKey::new("join", tok, 0),
            vec![a, c],
            real_fn(|deps| {
                let x: u64 = *deps[0].downcast_ref::<u64>().unwrap();
                let y: u64 = *deps[1].downcast_ref::<u64>().unwrap();
                TaskValue::new(x ^ y, 8)
            }),
        );
        cluster.submit(b.build(&HashSet::new()).unwrap()).unwrap();
        cluster.gather(&join).unwrap();
        cluster.shutdown();
        let events = collector.take();
        // if the roots ran on different workers, the join required >= 1 comm
        let workers: HashSet<WorkerId> = events
            .task_done
            .iter()
            .filter(|d| d.key.prefix.starts_with("root"))
            .map(|d| d.worker)
            .collect();
        if workers.len() == 2 {
            assert!(!events.comms.is_empty(), "join should have fetched a remote input");
        }
    }
}
