//! Multi-run campaigns: the paper performs 10 runs of ImageProcessing and
//! ResNet152 and 50 runs of XGBoost (it showed more variability) in the
//! same job configuration, then studies variability across runs.
//!
//! Runs of a campaign are mutually independent — each is seeded by its own
//! `(campaign_seed, RunId)` pair and shares no mutable state with its
//! siblings — so [`Campaign::execute`] runs them on a scoped worker pool
//! and reassembles the results in run-index order. The output is
//! byte-identical to sequential execution at any thread count; `DTF_JOBS`
//! (or [`Campaign::jobs`]) bounds the pool.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc;

use serde::{Deserialize, Serialize};

use dtf_core::error::Result;
use dtf_core::ids::{RunId, TaskKey};
use dtf_core::rngx::RunRng;
use dtf_core::time::{Dur, Time};
use dtf_wms::sim::{SimCluster, SimConfig, SimWorkflow};
use dtf_wms::RunData;

use crate::{imageproc, resnet, xgboost};

/// The three paper workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    ImageProcessing,
    ResNet152,
    Xgboost,
}

impl Workload {
    pub const ALL: [Workload; 3] =
        [Workload::ImageProcessing, Workload::ResNet152, Workload::Xgboost];

    pub fn name(&self) -> &'static str {
        match self {
            Workload::ImageProcessing => "ImageProcessing",
            Workload::ResNet152 => "ResNet152",
            Workload::Xgboost => "XGBOOST",
        }
    }

    /// Paper run counts (§IV-B): 10 / 10 / 50.
    pub fn paper_runs(&self) -> u32 {
        match self {
            Workload::Xgboost => 50,
            _ => 10,
        }
    }

    /// Generate the workflow for one run, from the run's workload stream.
    pub fn generate(&self, rr: &RunRng) -> SimWorkflow {
        let mut rng = rr.stream("workload");
        match self {
            Workload::ImageProcessing => imageproc::build(&mut rng),
            Workload::ResNet152 => resnet::build(&mut rng),
            Workload::Xgboost => xgboost::build(&mut rng),
        }
    }

    /// Workload-specific simulator adjustments: the ResNet DXT buffer that
    /// reproduces footnote 9, and per-workload `scheduler.bandwidth`
    /// settings (the `distributed.yaml` knob the paper collects as
    /// provenance precisely because it shifts placement behaviour).
    pub fn adjust(&self, cfg: &mut SimConfig) {
        match self {
            Workload::ResNet152 => {
                cfg.dxt = resnet::dxt_config();
                cfg.scheduler.assumed_bandwidth = 800e6;
                // Dask's measured per-prefix duration: transforms ~0.4s,
                // predicts ~2.3s
                cfg.scheduler.est_task_duration_s = 1.0;
            }
            Workload::ImageProcessing => {
                cfg.scheduler.assumed_bandwidth = 180e6;
                // chunk tasks average ~0.8s, partially amortized by pipelining
                cfg.scheduler.est_task_duration_s = 0.62;
            }
            Workload::Xgboost => {
                cfg.scheduler.assumed_bandwidth = 400e6;
            }
        }
    }
}

/// Per-run scalar summary (the quantities Figs. 3 and Table I aggregate).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    pub run: RunId,
    pub wall_s: f64,
    pub io_s: f64,
    pub comm_s: f64,
    pub compute_s: f64,
    pub io_ops: u64,
    pub io_ops_complete: u64,
    pub comms: u64,
    pub tasks: u64,
    pub graphs: u64,
    pub files: u64,
    pub warnings: u64,
    pub steals: u64,
    pub dxt_truncated: bool,
    /// Task start order (present when the campaign collects it).
    pub start_order: Option<Vec<(TaskKey, Time)>>,
}

impl RunSummary {
    pub fn of(data: &RunData, keep_order: bool) -> Self {
        Self {
            run: data.run,
            wall_s: data.wall_time.as_secs_f64(),
            io_s: data.io_time().as_secs_f64(),
            comm_s: data.comm_time().as_secs_f64(),
            compute_s: data.compute_time().as_secs_f64(),
            io_ops: data.io_ops(),
            io_ops_complete: data.io_ops_complete(),
            comms: data.comm_count() as u64,
            tasks: data.distinct_tasks() as u64,
            graphs: data.task_graphs() as u64,
            files: data.distinct_files() as u64,
            warnings: data.warnings.len() as u64,
            steals: data.steals,
            dxt_truncated: data.darshan.any_truncated(),
            start_order: keep_order.then(|| data.start_order.clone()),
        }
    }
}

/// What one campaign run yields: its summary, plus the full `RunData`
/// when the run is the kept first one.
type RunOutput = (RunSummary, Option<RunData>);

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct Campaign {
    pub workload: Workload,
    pub runs: u32,
    pub campaign_seed: u64,
    pub base: SimConfig,
    /// Keep full `RunData` of the first run (for the single-run figures).
    pub keep_first: bool,
    /// Record per-run task start orders (schedule-order analysis).
    pub keep_order: bool,
    /// Worker threads executing runs. `None` resolves the `DTF_JOBS`
    /// environment variable, falling back to `available_parallelism`.
    pub jobs: Option<usize>,
}

impl Campaign {
    /// Paper-default campaign for one workload.
    pub fn paper(workload: Workload, campaign_seed: u64) -> Self {
        Self {
            workload,
            runs: workload.paper_runs(),
            campaign_seed,
            base: SimConfig::default(),
            keep_first: true,
            keep_order: false,
            jobs: None,
        }
    }

    /// A scaled-down campaign for tests.
    pub fn small(workload: Workload, runs: u32) -> Self {
        Self {
            workload,
            runs,
            campaign_seed: 1,
            base: SimConfig::default(),
            keep_first: true,
            keep_order: false,
            jobs: None,
        }
    }

    /// Pin the worker-pool size (overrides `DTF_JOBS` and autodetection).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Some(jobs);
        self
    }

    /// Pool size for this campaign: the explicit [`Campaign::jobs`] if set,
    /// else `DTF_JOBS`, else `available_parallelism`; never more threads
    /// than runs.
    pub fn resolved_jobs(&self) -> usize {
        let requested = self
            .jobs
            .or_else(|| std::env::var("DTF_JOBS").ok().and_then(|s| s.parse::<usize>().ok()))
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        requested.min(self.runs.max(1) as usize)
    }

    /// Execute one run of the campaign. Fully determined by
    /// `(campaign_seed, r)` — no state is shared with other runs, which is
    /// what makes the parallel pool below sound.
    fn execute_run(&self, r: u32) -> Result<RunOutput> {
        let run = RunId(r);
        let mut cfg = self.base.clone();
        cfg.campaign_seed = self.campaign_seed;
        cfg.run = run;
        self.workload.adjust(&mut cfg);
        let rr = RunRng::new(self.campaign_seed, run);
        let workflow = self.workload.generate(&rr);
        let data = SimCluster::new(cfg)?.run(workflow)?;
        let summary = RunSummary::of(&data, self.keep_order);
        let keep = (r == 0 && self.keep_first).then_some(data);
        Ok((summary, keep))
    }

    /// Execute all runs — concurrently when the resolved pool size allows,
    /// with results collected in run-index order so summaries, kept
    /// `RunData`, and every downstream statistic are byte-identical to
    /// sequential execution at any thread count.
    pub fn execute(&self) -> Result<CampaignResult> {
        let jobs = self.resolved_jobs();
        let mut slots: Vec<Option<Result<RunOutput>>> = (0..self.runs).map(|_| None).collect();
        if jobs <= 1 {
            for r in 0..self.runs {
                slots[r as usize] = Some(self.execute_run(r));
            }
        } else {
            // hand-rolled scoped pool: `jobs` workers pull run indices from
            // an atomic counter and send `(index, result)` back over a
            // channel; arrival order is nondeterministic, slot placement
            // makes it irrelevant
            let next = AtomicU32::new(0);
            let (tx, rx) = mpsc::channel();
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    let tx = tx.clone();
                    let next = &next;
                    scope.spawn(move || loop {
                        let r = next.fetch_add(1, Ordering::Relaxed);
                        if r >= self.runs {
                            break;
                        }
                        if tx.send((r, self.execute_run(r))).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (r, res) in rx {
                    slots[r as usize] = Some(res);
                }
            });
        }
        // drain in run order; the lowest failing run's error wins, matching
        // what sequential execution would have reported
        let mut summaries = Vec::with_capacity(self.runs as usize);
        let mut first = None;
        for slot in slots {
            let (summary, kept) = slot.expect("every run index was executed")?;
            summaries.push(summary);
            if let Some(data) = kept {
                first = Some(data);
            }
        }
        Ok(CampaignResult { workload: self.workload, summaries, first })
    }
}

/// The results of one campaign.
#[derive(Debug)]
pub struct CampaignResult {
    pub workload: Workload,
    pub summaries: Vec<RunSummary>,
    /// Full data of run 0 (when kept).
    pub first: Option<RunData>,
}

impl CampaignResult {
    /// `(min, max)` over runs of an integer metric.
    pub fn range<F: Fn(&RunSummary) -> u64>(&self, f: F) -> (u64, u64) {
        let mut lo = u64::MAX;
        let mut hi = 0;
        for s in &self.summaries {
            let v = f(s);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        if self.summaries.is_empty() {
            (0, 0)
        } else {
            (lo, hi)
        }
    }

    /// Mean total wall time across runs.
    pub fn mean_wall(&self) -> Dur {
        if self.summaries.is_empty() {
            return Dur::ZERO;
        }
        let s: f64 = self.summaries.iter().map(|r| r.wall_s).sum();
        Dur::from_secs_f64(s / self.summaries.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // a tiny bespoke workload keeps campaign tests fast; the real
    // generators are exercised by the integration suite and the harness
    fn tiny_campaign(runs: u32) -> CampaignResult {
        // ImageProcessing's generator is the cheapest of the three paper
        // workloads, but still ~5k tasks; use 2 runs at most here.
        Campaign::small(Workload::ImageProcessing, runs).execute().unwrap()
    }

    #[test]
    #[ignore = "multi-second: full ImageProcessing campaign; run with --ignored"]
    fn campaign_collects_summaries() {
        let result = tiny_campaign(2);
        assert_eq!(result.summaries.len(), 2);
        assert!(result.first.is_some());
        let (lo, hi) = result.range(|s| s.io_ops);
        assert!(lo > 0 && hi >= lo);
    }

    #[test]
    fn workload_metadata() {
        assert_eq!(Workload::Xgboost.paper_runs(), 50);
        assert_eq!(Workload::ImageProcessing.paper_runs(), 10);
        assert_eq!(Workload::Xgboost.name(), "XGBOOST");
    }

    #[test]
    fn resnet_adjustment_shrinks_dxt_buffer() {
        let mut cfg = SimConfig::default();
        let default_buf = cfg.dxt.max_records;
        Workload::ResNet152.adjust(&mut cfg);
        assert!(cfg.dxt.max_records < default_buf);
    }

    #[test]
    fn range_of_empty_result_is_zero() {
        let result =
            CampaignResult { workload: Workload::ResNet152, summaries: vec![], first: None };
        assert_eq!(result.range(|s| s.io_ops), (0, 0));
        assert_eq!(result.mean_wall(), Dur::ZERO);
    }
}
