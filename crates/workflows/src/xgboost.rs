//! The XGBoost trip-duration regression workflow (paper §IV-B).
//!
//! Trains a regression model on NYC High-Volume For-Hire-Vehicle trip
//! records: 61 parquet files (~20 GiB) read through
//! `read_parquet-fused-assign` tasks (Dask's graph optimization fuses the
//! I/O with its consumer, producing task outputs far above the recommended
//! 128 MB — the Fig. 6 observation), a long chain of dataframe-preparation
//! graphs (`getitem`, `random_split_take`, `drop_by_shallow_copy`, …),
//! distributed training, and batch prediction. 74 graphs are submitted
//! step by step, mirroring `xgboost.dask.train` / `predict` driving Dask
//! collections.
//!
//! Calibration (Table I): 74 graphs, 10348 distinct tasks, 61 files,
//! 867–1670 I/O operations (per-run parquet row-group chunking varies),
//! 1464–2027 communications. The long fused-read tasks carry a high
//! event-loop stall rate, producing ≈300 unresponsive-event-loop warnings
//! in the first 500 s (Fig. 7).

use rand::Rng;

use dtf_core::ids::{FileId, GraphId, TaskKey};
use dtf_core::time::Dur;
use dtf_wms::sim::{SimWorkflow, SubmitPolicy};
use dtf_wms::{GraphBuilder, IoCall, SimAction};

/// Monthly parquet files, 2019–2024 subset.
pub const FILES: u32 = 61;
/// Total dataset size: 20 GiB.
pub const TOTAL_BYTES: u64 = 20 << 30;
/// Dataframe partitions after repartitioning (~141 MB each).
pub const PARTITIONS: u32 = 144;
/// Dataframe-operation graphs between preparation and training.
const OP_GRAPHS: u32 = 67;
/// Training tasks: one long-running task per worker plus a finalizer.
const TRAIN_TASKS: u32 = 9;

const MB: u64 = 1 << 20;

/// Build the XGBoost workflow for one run. Per-run randomness: parquet
/// row-group read granularity (drives the wide Table I I/O range) and read
/// compute skew.
pub fn build<R: Rng + ?Sized>(rng: &mut R) -> SimWorkflow {
    let file_bytes = TOTAL_BYTES / FILES as u64;
    let dataset: Vec<(String, u64, u32)> = (0..FILES)
        .map(|i| {
            let (y, m) = (2019 + i / 12, 1 + i % 12);
            (format!("/nyc-fhv/fhvhv_tripdata_{y}-{m:02}.parquet"), file_bytes, 8)
        })
        .collect();

    // this run's parquet read granularity: the dataframe layer picks one
    // row-group batching for the whole collection (correlated across
    // files), with +/-1 per-file jitter -- this is what spreads Table I's
    // 867-1670 I/O range across runs
    let base_reads: i64 = rng.gen_range(15..=26);
    let reads_per_file: Vec<u64> =
        (0..FILES).map(|_| (base_reads + rng.gen_range(-1i64..=1)) as u64).collect();

    let mut graphs = Vec::new();
    let mut external: std::collections::HashSet<TaskKey> = std::collections::HashSet::new();
    let finish = |b: GraphBuilder, external: &mut std::collections::HashSet<TaskKey>| {
        let g = b.build(external).expect("xgboost graph valid");
        for t in &g.tasks {
            external.insert(t.key.clone());
        }
        g
    };

    // --- graph 0: read_parquet-fused-assign (61 long, heavy tasks)
    let mut g0 = GraphBuilder::new(GraphId(0));
    let t_read = g0.new_token();
    let mut read_keys = Vec::new();
    for i in 0..FILES {
        let n = reads_per_file[i as usize];
        let chunk = file_bytes / n;
        let io: Vec<IoCall> =
            (0..n).map(|c| IoCall::read(FileId(i as u64), c * chunk, chunk)).collect();
        // long fused decode+assign; heavy skew across files
        let compute = 140.0 + rng.gen::<f64>() * 160.0;
        read_keys.push(g0.add_sim(
            "read_parquet-fused-assign",
            t_read,
            i,
            vec![],
            SimAction {
                compute: Dur::from_secs_f64(compute),
                io,
                output_nbytes: file_bytes, // ~340 MB, far above 128 MB
                stall_rate: 0.033,
            },
        ));
    }
    graphs.push(finish(g0, &mut external));

    // --- graph 1: repartition 61 -> 144 (shuffle: inter-partition deps)
    let mut g1 = GraphBuilder::new(GraphId(1));
    let t_rep = g1.new_token();
    let mut part_keys = Vec::new();
    for p in 0..PARTITIONS {
        // each new partition draws from 2 neighbouring input files
        let a = (p * FILES / PARTITIONS) % FILES;
        let b = (a + 1) % FILES;
        part_keys.push(g1.add_sim(
            "repartition",
            t_rep,
            p,
            vec![read_keys[a as usize].clone(), read_keys[b as usize].clone()],
            SimAction {
                compute: Dur::from_secs_f64(2.2),
                io: vec![],
                output_nbytes: TOTAL_BYTES / PARTITIONS as u64, // ~142 MB
                stall_rate: 0.002,
            },
        ));
    }
    graphs.push(finish(g1, &mut external));

    // --- graph 2: getitem__get_categories (category-dtype discovery)
    let mut gc = GraphBuilder::new(GraphId(2));
    let t_cat = gc.new_token();
    let mut cat_keys = Vec::new();
    for p in 0..PARTITIONS {
        cat_keys.push(gc.add_sim(
            "getitem__get_categories",
            t_cat,
            p,
            vec![part_keys[p as usize].clone()],
            SimAction {
                compute: Dur::from_secs_f64(1.4),
                io: vec![],
                output_nbytes: 110 * MB,
                stall_rate: 0.0,
            },
        ));
    }
    graphs.push(finish(gc, &mut external));

    // --- graph 3: random_split_take (2 outputs per partition: train/test)
    let mut g2 = GraphBuilder::new(GraphId(3));
    let t_split = g2.new_token();
    let mut train_parts = Vec::new();
    let mut test_parts = Vec::new();
    for p in 0..PARTITIONS {
        let dep = vec![cat_keys[p as usize].clone()];
        train_parts.push(g2.add_sim(
            "random_split_take",
            t_split,
            2 * p,
            dep.clone(),
            SimAction {
                compute: Dur::from_secs_f64(1.8),
                io: vec![],
                output_nbytes: 100 * MB,
                stall_rate: 0.0,
            },
        ));
        test_parts.push(g2.add_sim(
            "random_split_take",
            t_split,
            2 * p + 1,
            dep,
            SimAction {
                compute: Dur::from_secs_f64(0.9),
                io: vec![],
                output_nbytes: 40 * MB,
                stall_rate: 0.0,
            },
        ));
    }
    graphs.push(finish(g2, &mut external));

    // --- graphs 4..(4+67): dataframe-operation chain on the train split
    let op_prefixes = [
        "getitem__get_categories",
        "getitem",
        "assign",
        "drop_by_shallow_copy",
        "astype",
        "fillna",
        "getitem",
    ];
    let mut chain = train_parts.clone();
    for op in 0..OP_GRAPHS {
        let mut g = GraphBuilder::new(GraphId(4 + op));
        let tok = g.new_token();
        let prefix = op_prefixes[(op as usize) % op_prefixes.len()];
        // every 9th op re-aligns partitions (windowed deps -> shuffles)
        let windowed = op % 9 == 4;
        let mut next = Vec::with_capacity(PARTITIONS as usize);
        for p in 0..PARTITIONS {
            let mut deps = vec![chain[p as usize].clone()];
            if windowed {
                deps.push(chain[((p + 1) % PARTITIONS) as usize].clone());
            }
            next.push(g.add_sim(
                prefix,
                tok,
                p,
                deps,
                SimAction {
                    compute: Dur::from_secs_f64(1.6 + 0.9 * ((op % 3) as f64)),
                    io: vec![],
                    // shrinking outputs as columns are dropped (< 128 MB)
                    output_nbytes: (90 - (op as u64)) * MB,
                    stall_rate: 0.0,
                },
            ));
        }
        chain = next;
        graphs.push(finish(g, &mut external));
    }

    // --- training graph: one long-running task per worker + finalize
    let mut gt = GraphBuilder::new(GraphId(4 + OP_GRAPHS));
    let t_train = gt.new_token();
    let workers = (TRAIN_TASKS - 1) as usize;
    let mut train_keys = Vec::new();
    for w in 0..workers {
        // each train task gathers its share of partitions
        let deps: Vec<TaskKey> = chain
            .iter()
            .enumerate()
            .filter(|(p, _)| p % workers == w)
            .map(|(_, k)| k.clone())
            .collect();
        train_keys.push(gt.add_sim(
            "xgboost-train",
            t_train,
            w as u32,
            deps,
            SimAction {
                compute: Dur::from_secs_f64(110.0),
                io: vec![],
                output_nbytes: 24 * MB, // boosted-model shard
                stall_rate: 0.012,
            },
        ));
    }
    let model = gt.add_sim(
        "xgboost-model",
        t_train,
        workers as u32,
        train_keys,
        SimAction::compute_only(Dur::from_secs_f64(4.0), 24 * MB),
    );
    graphs.push(finish(gt, &mut external));

    // --- prediction: 44 partition predicts, then 10 gathers
    let mut gp = GraphBuilder::new(GraphId(5 + OP_GRAPHS));
    let t_pred = gp.new_token();
    let mut preds = Vec::new();
    for p in 0..44u32 {
        preds.push(gp.add_sim(
            "predict",
            t_pred,
            p,
            vec![model.clone(), test_parts[(p as usize) * test_parts.len() / 44].clone()],
            SimAction {
                compute: Dur::from_secs_f64(2.4),
                io: vec![],
                output_nbytes: 6 * MB,
                stall_rate: 0.0,
            },
        ));
    }
    graphs.push(finish(gp, &mut external));

    let mut gg = GraphBuilder::new(GraphId(6 + OP_GRAPHS));
    let t_gather = gg.new_token();
    for i in 0..10u32 {
        let deps: Vec<TaskKey> = preds.iter().skip(i as usize * 4).take(5).cloned().collect();
        gg.add_sim(
            "gather-metrics",
            t_gather,
            i,
            deps,
            SimAction::compute_only(Dur::from_secs_f64(0.8), MB),
        );
    }
    graphs.push(finish(gg, &mut external));

    SimWorkflow {
        name: "XGBOOST".into(),
        graphs,
        submit: SubmitPolicy::Sequential,
        startup: Dur::from_secs_f64(14.0),
        inter_graph: Dur::from_secs_f64(1.2),
        shutdown: Dur::from_secs_f64(5.0),
        dataset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn total_tasks(wf: &SimWorkflow) -> usize {
        wf.graphs.iter().map(|g| g.len()).sum()
    }

    #[test]
    fn matches_table1_structure() {
        let mut rng = SmallRng::seed_from_u64(1);
        let wf = build(&mut rng);
        assert_eq!(wf.graphs.len(), 74, "Table I: 74 task graphs");
        assert_eq!(total_tasks(&wf), 10348, "Table I: 10348 distinct tasks");
        assert_eq!(wf.dataset.len(), 61, "Table I: 61 distinct files");
        assert_eq!(wf.submit, SubmitPolicy::Sequential);
    }

    #[test]
    fn io_ops_within_table1_band_across_runs() {
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let wf = build(&mut rng);
            let ops: u64 = wf
                .graphs
                .iter()
                .flat_map(|g| &g.tasks)
                .filter_map(|t| match &t.payload {
                    dtf_wms::Payload::Sim(a) => Some(a.io.len() as u64),
                    _ => None,
                })
                .sum();
            assert!((854..=1647).contains(&ops), "seed {seed}: {ops} reads");
        }
    }

    #[test]
    fn io_ops_actually_vary_across_runs() {
        let count = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            build(&mut rng)
                .graphs
                .iter()
                .flat_map(|g| &g.tasks)
                .filter_map(|t| match &t.payload {
                    dtf_wms::Payload::Sim(a) => Some(a.io.len()),
                    _ => None,
                })
                .sum::<usize>()
        };
        let counts: std::collections::HashSet<usize> = (0..10).map(count).collect();
        assert!(counts.len() >= 5, "chunking should vary widely run to run");
    }

    #[test]
    fn fused_read_outputs_exceed_128mb() {
        let mut rng = SmallRng::seed_from_u64(2);
        let wf = build(&mut rng);
        for t in &wf.graphs[0].tasks {
            if let dtf_wms::Payload::Sim(a) = &t.payload {
                assert!(t.key.prefix == "read_parquet-fused-assign");
                assert!(a.output_nbytes > 128 * MB, "fused read output too small");
                assert!(a.stall_rate > 0.0, "long fused tasks pressure the event loop");
            }
        }
    }

    #[test]
    fn reads_stay_within_file_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let wf = build(&mut rng);
        for t in &wf.graphs[0].tasks {
            if let dtf_wms::Payload::Sim(a) = &t.payload {
                for c in &a.io {
                    let (_, size, _) = &wf.dataset[c.file.0 as usize];
                    assert!(c.offset + c.size <= *size);
                }
            }
        }
    }

    #[test]
    fn graphs_chain_on_external_keys() {
        // later graphs depend on earlier graphs' outputs: building them with
        // the accumulated external set must succeed (it did in build), and
        // the repartition graph must reference graph 0 keys
        let mut rng = SmallRng::seed_from_u64(4);
        let wf = build(&mut rng);
        let g0_keys: std::collections::HashSet<&TaskKey> =
            wf.graphs[0].tasks.iter().map(|t| &t.key).collect();
        let refs =
            wf.graphs[1].tasks.iter().flat_map(|t| &t.deps).filter(|d| g0_keys.contains(d)).count();
        assert!(refs > 0, "repartition must consume read outputs");
    }

    #[test]
    fn category_mix_matches_fig6() {
        let mut rng = SmallRng::seed_from_u64(5);
        let wf = build(&mut rng);
        let prefixes: std::collections::HashSet<dtf_core::ids::TaskPrefix> =
            wf.graphs.iter().flat_map(|g| &g.tasks).map(|t| t.key.prefix.clone()).collect();
        for expected in [
            "read_parquet-fused-assign",
            "getitem",
            "random_split_take",
            "drop_by_shallow_copy",
            "getitem__get_categories",
        ] {
            assert!(prefixes.contains(expected), "missing category {expected}");
        }
    }
}
