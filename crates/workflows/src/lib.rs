//! # dtf-workflows
//!
//! The paper's three evaluation workloads (§IV-B), rebuilt as synthetic
//! task-graph generators calibrated to Table I, plus the multi-run
//! campaign driver that produces the data behind every figure.
//!
//! | workflow | graphs | tasks | files | submission |
//! |---|---|---|---|---|
//! | [`imageproc`] — 4-step image pipeline over BCSS-like images | 3 | 5440 | 151(+2 stores) | sequential |
//! | [`resnet`] — fine-tuned ResNet152 batch prediction | 1 | 8645 | 3929 | all at once |
//! | [`xgboost`] — NYC-FHV trip-duration regression | 74 | 10348 | 61 | sequential |
//!
//! Each generator takes the per-run workload RNG stream, so structural
//! run-to-run variation (e.g. XGBoost's parquet chunking) reproduces the
//! ranges Table I reports.

pub mod campaign;
pub mod imageproc;
pub mod resnet;
pub mod xgboost;

pub use campaign::{Campaign, CampaignResult, RunSummary, Workload};
