//! The fine-tuned ResNet152 batch-prediction workflow (paper §IV-B).
//!
//! Three `@dask.delayed`-style functions — `load`, `transform`, `predict` —
//! over an Imagewang-like dataset of 3929 image files, submitted as a
//! single task graph.
//!
//! Calibration (Table I): 1 graph, 8645 distinct tasks
//! (3929 load + 3929 transform + 786 batch predicts + 1 gather),
//! 3929 distinct files, ~3900 communications. The Darshan DXT trace is
//! **incomplete by design**: with the paper's default instrumentation
//! buffer, per-worker DXT overflows and only 2057–2302 of the 3929 reads
//! are traced (footnote 9) — [`dxt_config`] reproduces that buffer limit.

use rand::{Rng, SeedableRng};

use dtf_core::ids::FileId;
use dtf_core::time::Dur;
use dtf_darshan::DxtConfig;
use dtf_wms::sim::{SimWorkflow, SubmitPolicy};
use dtf_wms::{GraphBuilder, IoCall, SimAction};

/// Images in the Imagewang-like validation set.
pub const FILES: u32 = 3929;
/// Prediction batch size.
pub const BATCH: u32 = 5;

/// The DXT configuration that reproduces the paper's footnote-9
/// truncation: each worker's trace buffer holds 630 records; with this
/// run's read granularity (1–3 reads per file, set by the loader's
/// per-run readahead) the 8 workers together trace roughly 2050–2350
/// reads — fewer than actually issued.
pub fn dxt_config() -> DxtConfig {
    DxtConfig::with_buffer(630)
}

/// Build the ResNet152 batch-prediction workflow for one run.
pub fn build<R: Rng + ?Sized>(rng: &mut R) -> SimWorkflow {
    // dataset: 3929 JPEG-ish files, 60-220 KB (sizes are a fixed property
    // of the dataset: drawn from a stream independent of run ordering)
    let mut size_rng = rand::rngs::SmallRng::seed_from_u64(0x1034_9e57);
    let mut sizes = Vec::with_capacity(FILES as usize);
    let dataset: Vec<(String, u64, u32)> = (0..FILES)
        .map(|i| {
            let size = 60 * 1024 + (size_rng.gen::<u64>() % (160 * 1024));
            sizes.push(size);
            (format!("/imagewang/val/img_{i:05}.jpg"), size, 1)
        })
        .collect();

    // per-run loader readahead: node memory pressure changes the image
    // decoder's read batching run to run, which is what varies the traced
    // I/O count under the fixed DXT budget (paper Table I: 2057-2302)
    let readahead: u64 = [96 * 1024, 128 * 1024, 160 * 1024][rng.gen_range(0..3usize)];

    let mut g = GraphBuilder::new(dtf_core::ids::GraphId(0));
    let t_load = g.new_token();
    let t_transform = g.new_token();
    let t_predict = g.new_token();
    let t_gather = g.new_token();

    let mut batch_deps: Vec<Vec<dtf_core::ids::TaskKey>> = Vec::new();
    for i in 0..FILES {
        let file = FileId(i as u64);
        let load = g.add_sim(
            "load",
            t_load,
            i,
            vec![],
            SimAction {
                compute: Dur::from_millis_f64(15.0),
                io: {
                    // read the file in readahead-sized chunks
                    let size = sizes[i as usize];
                    let mut io = Vec::new();
                    let mut off = 0;
                    while off < size {
                        let len = readahead.min(size - off);
                        io.push(IoCall::read(file, off, len));
                        off += len;
                    }
                    io
                },
                // decoded image tensor ~0.6 MB
                output_nbytes: 600 * 1024,
                stall_rate: 0.0,
            },
        );
        let transform = g.add_sim(
            "transform",
            t_transform,
            i,
            vec![load],
            SimAction {
                compute: Dur::from_millis_f64(430.0),
                io: vec![],
                output_nbytes: 602_112, // 3*224*224*4 resized tensor
                stall_rate: 0.0,
            },
        );
        // batches are formed over a shuffled dataset order, so a batch's
        // members were loaded far apart (and on different workers)
        let n_batches = FILES / BATCH + 1; // 786
        let b = (i % n_batches) as usize;
        if batch_deps.len() <= b {
            batch_deps.push(Vec::new());
        }
        batch_deps[b].push(transform);
    }
    let mut predicts = Vec::new();
    for (b, deps) in batch_deps.into_iter().enumerate() {
        predicts.push(g.add_sim(
            "predict",
            t_predict,
            b as u32,
            deps,
            SimAction {
                // ResNet152 forward pass on a batch
                compute: Dur::from_millis_f64(2300.0),
                io: vec![],
                output_nbytes: 4 * BATCH as u64 * 20, // logits for 20 classes
                stall_rate: 0.0,
            },
        ));
    }
    g.add_sim(
        "gather-results",
        t_gather,
        0,
        predicts,
        SimAction::compute_only(Dur::from_millis_f64(200.0), 4 * FILES as u64 * 20),
    );

    SimWorkflow {
        name: "ResNet152".into(),
        graphs: vec![g.build(&std::collections::HashSet::new()).expect("resnet graph valid")],
        submit: SubmitPolicy::AllAtOnce,
        startup: Dur::from_secs_f64(12.0),
        inter_graph: Dur::ZERO,
        shutdown: Dur::from_secs_f64(4.0),
        dataset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table1_structure() {
        let mut rng = SmallRng::seed_from_u64(1);
        let wf = build(&mut rng);
        assert_eq!(wf.graphs.len(), 1, "Table I: a single task graph");
        // 3929 load + 3929 transform + 786 predict + 1 gather = 8645
        assert_eq!(wf.graphs[0].len(), 8645, "Table I: 8645 distinct tasks");
        assert_eq!(wf.dataset.len(), 3929, "Table I: 3929 distinct files");
        assert_eq!(wf.submit, SubmitPolicy::AllAtOnce);
    }

    #[test]
    fn reads_cover_every_file_in_one_to_three_chunks() {
        let mut rng = SmallRng::seed_from_u64(2);
        let wf = build(&mut rng);
        let mut reads_total = 0usize;
        for t in &wf.graphs[0].tasks {
            if t.key.prefix != "load" {
                continue;
            }
            let dtf_wms::Payload::Sim(a) = &t.payload else { unreachable!() };
            let n = a.io.iter().filter(|c| !c.write).count();
            assert!((1..=3).contains(&n), "load issues 1-3 chunked reads, got {n}");
            // chunks tile the file exactly
            let total: u64 = a.io.iter().map(|c| c.size).sum();
            let (_, size, _) = &wf.dataset[a.io[0].file.0 as usize];
            assert_eq!(total, *size);
            reads_total += n;
        }
        assert!(reads_total > 3929, "chunking issues more reads than files");
    }

    #[test]
    fn readahead_varies_read_counts_across_runs() {
        let count = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            build(&mut rng).graphs[0]
                .tasks
                .iter()
                .filter_map(|t| match &t.payload {
                    dtf_wms::Payload::Sim(a) => Some(a.io.len()),
                    _ => None,
                })
                .sum::<usize>()
        };
        let counts: std::collections::HashSet<usize> = (0..12).map(count).collect();
        assert!(counts.len() >= 2, "per-run readahead should change totals");
    }

    #[test]
    fn batch_fanin_is_batch_size() {
        let mut rng = SmallRng::seed_from_u64(3);
        let wf = build(&mut rng);
        let predict_deps: Vec<usize> = wf.graphs[0]
            .tasks
            .iter()
            .filter(|t| t.key.prefix == "predict")
            .map(|t| t.deps.len())
            .collect();
        assert_eq!(predict_deps.len(), 786);
        // all full batches except possibly the last
        assert!(predict_deps.iter().take(785).all(|&d| d == 5));
        assert_eq!(*predict_deps.last().unwrap(), 4); // 3929 = 785*5 + 4
    }

    #[test]
    fn dxt_budget_below_total_reads() {
        // 8 workers x 630 records each = 5040 record slots; a load occupies
        // open + 1..3 reads + close, so the traced read count sits in the
        // low two-thousands — strictly fewer than the >= 3929 reads issued
        // (footnote-9 truncation).
        let cfg = dxt_config();
        let slots = 8 * cfg.max_records;
        // best case (1 read per load): reads = slots / 3
        // worst case (3 reads per load): reads = 3 * slots / 5
        let lo = slots / 3;
        let hi = 3 * slots / 5;
        assert!(hi < 3929);
        assert!((1600..=1700).contains(&lo), "lo {lo}");
        assert!((2950..=3050).contains(&hi), "hi {hi}");
    }
}
