//! The ImageProcessing pipeline (paper §IV-B).
//!
//! A four-step pipeline — normalization, grayscale, Gaussian filter,
//! segmentation — over a BCSS-like image dataset, written purely against
//! collection APIs (`dask.array` / `dask_image`), which generate the task
//! graphs automatically. Three task graphs are submitted sequentially
//! (normalize+grayscale fuse into the first), so graph boundaries act as
//! synchronization barriers that produce the bursty three-read-phase I/O
//! pattern of Fig. 4.
//!
//! Calibration (Table I): 3 graphs, 5440 distinct tasks, 151 image files
//! (plus 3 zarr-like output stores), ~5283 I/O operations (10–11 chunked
//! 4 MB reads per image per read phase; a small store write per image per
//! phase), ~3200 communications, ≈100 s wall time.

use rand::Rng;

use dtf_core::ids::{FileId, GraphId, TaskKey};
use dtf_core::time::Dur;
use dtf_wms::sim::{SimWorkflow, SubmitPolicy};
use dtf_wms::{GraphBuilder, IoCall, SimAction};

/// Number of images in the BCSS-like dataset.
pub const IMAGES: u32 = 151;
/// 4 MB chunk size used by `dask_image.imread`.
pub const CHUNK: u64 = 4 << 20;

/// Chunks (= 4 MB reads) per image: images are 40 or 44 MB (10 or 11
/// chunks), within the paper's observed 10–25 reads per `imread` task.
/// 100 images at 11 chunks + 51 at 10 gives 1610 reads per read phase;
/// 3 phases + 453 store writes = 5283 I/O ops, centred in Table I's
/// 5274–5287 band.
pub fn chunks_of(img: u32) -> u64 {
    if img % 3 == 2 {
        10
    } else {
        11
    }
}

/// Spatial chunks each loaded image is split into by `normalize`.
const NORM_CHUNKS: u32 = 8;
/// Spatial chunks for the fused `grayscale` and `segmentation` steps
/// (coarser after filtering).
const SEG_CHUNKS: u32 = 7;

/// Build the ImageProcessing workflow for one run.
///
/// `rng` is the per-run workload stream: it varies chunk-boundary
/// straggler reads (±ops, reproducing Table I's 5274–5287 I/O range) and
/// per-task compute noise is left to the simulator.
pub fn build<R: Rng + ?Sized>(rng: &mut R) -> SimWorkflow {
    // dataset: 151 images + 3 output stores (FileIds 151..=153)
    let mut dataset: Vec<(String, u64, u32)> = (0..IMAGES)
        .map(|i| (format!("/bcss/images/TCGA-{i:04}.tif"), chunks_of(i) * CHUNK, 4))
        .collect();
    dataset.push(("/bcss/out/normalized.zarr".into(), 0, 4));
    dataset.push(("/bcss/out/filtered.zarr".into(), 0, 4));
    dataset.push(("/bcss/out/segmented.zarr".into(), 0, 4));
    let normalized_store = FileId(IMAGES as u64);
    let filtered_store = FileId(IMAGES as u64 + 1);
    let segmented_store = FileId(IMAGES as u64 + 2);

    // per-image straggler reads this run: a few imread tasks re-read one
    // boundary chunk (decoding across chunk boundaries)
    let stragglers: Vec<bool> = (0..IMAGES * 3).map(|_| rng.gen::<f64>() < 0.002).collect();

    let imread = |b: &mut GraphBuilder, tok: u32, img: u32, straggler: bool| -> TaskKey {
        let file = FileId(img as u64);
        let chunks = chunks_of(img);
        let mut io: Vec<IoCall> =
            (0..chunks).map(|c| IoCall::read(file, c * CHUNK, CHUNK)).collect();
        if straggler {
            io.push(IoCall::read(file, CHUNK / 2, CHUNK));
        }
        b.add_sim(
            "imread",
            tok,
            img,
            vec![],
            SimAction {
                compute: Dur::from_millis_f64(200.0),
                io,
                output_nbytes: chunks * CHUNK,
                stall_rate: 0.0,
            },
        );
        TaskKey::new("imread", tok, img)
    };

    let chunk_task = |b: &mut GraphBuilder,
                      prefix: &str,
                      tok: u32,
                      img: u32,
                      chunk: u32,
                      chunks: u32,
                      deps: Vec<TaskKey>,
                      compute_ms: f64| {
        b.add_sim(
            prefix,
            tok,
            img * chunks + chunk,
            deps,
            SimAction {
                compute: Dur::from_millis_f64(compute_ms),
                io: vec![],
                output_nbytes: chunks_of(img) * CHUNK / chunks as u64,
                stall_rate: 0.0,
            },
        )
    };

    // --- graph 0: imread -> normalize -> grayscale -> store (step 1+2
    //     fused; the normalized grayscale image is persisted, so phase 1
    //     also ends in a write burst as Fig. 4 shows)
    let mut g0 = GraphBuilder::new(GraphId(0));
    let t_read0 = g0.new_token();
    let t_norm = g0.new_token();
    let t_gray = g0.new_token();
    let t_store0 = g0.new_token();
    for img in 0..IMAGES {
        let read = imread(&mut g0, t_read0, img, stragglers[img as usize]);
        let norms: Vec<TaskKey> = (0..NORM_CHUNKS)
            .map(|c| {
                chunk_task(
                    &mut g0,
                    "normalize",
                    t_norm,
                    img,
                    c,
                    NORM_CHUNKS,
                    vec![read.clone()],
                    850.0,
                )
            })
            .collect();
        let mut grays = Vec::new();
        for c in 0..SEG_CHUNKS {
            let deps = vec![norms[c as usize].clone()];
            grays.push(chunk_task(&mut g0, "grayscale", t_gray, img, c, SEG_CHUNKS, deps, 650.0));
        }
        // the store consumes the 7 grayscale chunks plus the boundary
        // normalize chunk the 8 -> 7 rechunk folds in
        let mut store_deps = grays;
        store_deps.push(norms[(NORM_CHUNKS - 1) as usize].clone());
        let write_size = 24 * 1024 + (img as u64 % 11) * 1024;
        g0.add_sim(
            "store-normalized",
            t_store0,
            img,
            store_deps,
            SimAction {
                compute: Dur::from_millis_f64(70.0),
                io: vec![IoCall::write(normalized_store, img as u64 * 128 * 1024, write_size)],
                output_nbytes: 256,
                stall_rate: 0.0,
            },
        );
    }
    // a couple of collection-level finalize tasks (graph metadata barriers)
    let t_fin0 = g0.new_token();
    g0.add_sim(
        "finalize",
        t_fin0,
        0,
        vec![],
        SimAction::compute_only(Dur::from_millis_f64(30.0), 64),
    );
    g0.add_sim(
        "finalize",
        t_fin0,
        1,
        vec![],
        SimAction::compute_only(Dur::from_millis_f64(30.0), 64),
    );

    // --- graph 1: imread -> gaussian_filter -> store (writes small images)
    let mut g1 = GraphBuilder::new(GraphId(1));
    let t_read1 = g1.new_token();
    let t_gauss = g1.new_token();
    let t_store1 = g1.new_token();
    for img in 0..IMAGES {
        let read = imread(&mut g1, t_read1, img, stragglers[(IMAGES + img) as usize]);
        let mut parts = Vec::new();
        for c in 0..NORM_CHUNKS {
            parts.push(chunk_task(
                &mut g1,
                "gaussian_filter",
                t_gauss,
                img,
                c,
                NORM_CHUNKS,
                vec![read.clone()],
                950.0,
            ));
        }
        // one small write per image into the shared store (few KB)
        let write_size = 8 * 1024 + (img as u64 % 7) * 1024;
        g1.add_sim(
            "store-filtered",
            t_store1,
            img,
            parts,
            SimAction {
                compute: Dur::from_millis_f64(70.0),
                io: vec![IoCall::write(filtered_store, img as u64 * 64 * 1024, write_size)],
                output_nbytes: 256,
                stall_rate: 0.0,
            },
        );
    }
    let t_fin1 = g1.new_token();
    g1.add_sim(
        "finalize",
        t_fin1,
        0,
        vec![],
        SimAction::compute_only(Dur::from_millis_f64(30.0), 64),
    );

    // --- graph 2: imread -> segmentation -> store (writes small masks)
    let mut g2 = GraphBuilder::new(GraphId(2));
    let t_read2 = g2.new_token();
    let t_seg = g2.new_token();
    let t_store2 = g2.new_token();
    for img in 0..IMAGES {
        let read = imread(&mut g2, t_read2, img, stragglers[(2 * IMAGES + img) as usize]);
        let mut parts = Vec::new();
        for c in 0..SEG_CHUNKS {
            parts.push(chunk_task(
                &mut g2,
                "segmentation",
                t_seg,
                img,
                c,
                SEG_CHUNKS,
                vec![read.clone()],
                1200.0,
            ));
        }
        let write_size = 4 * 1024 + (img as u64 % 5) * 1024;
        g2.add_sim(
            "store-segmented",
            t_store2,
            img,
            parts,
            SimAction {
                compute: Dur::from_millis_f64(70.0),
                io: vec![IoCall::write(segmented_store, img as u64 * 32 * 1024, write_size)],
                output_nbytes: 256,
                stall_rate: 0.0,
            },
        );
    }
    let t_fin2 = g2.new_token();
    g2.add_sim(
        "finalize",
        t_fin2,
        0,
        vec![],
        SimAction::compute_only(Dur::from_millis_f64(30.0), 64),
    );

    let external = std::collections::HashSet::new();
    SimWorkflow {
        name: "ImageProcessing".into(),
        graphs: vec![
            g0.build(&external).expect("graph 0 valid"),
            g1.build(&external).expect("graph 1 valid"),
            g2.build(&external).expect("graph 2 valid"),
        ],
        submit: SubmitPolicy::Sequential,
        startup: Dur::from_secs_f64(9.0),
        inter_graph: Dur::from_secs_f64(4.0),
        shutdown: Dur::from_secs_f64(3.0),
        dataset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn matches_table1_structure() {
        let mut rng = SmallRng::seed_from_u64(1);
        let wf = build(&mut rng);
        assert_eq!(wf.graphs.len(), 3, "Table I: 3 task graphs");
        let tasks: usize = wf.graphs.iter().map(|g| g.len()).sum();
        assert_eq!(tasks, 5440, "Table I: 5440 distinct tasks");
        assert_eq!(wf.dataset.len(), 154, "151 images + 3 output stores");
        assert_eq!(wf.submit, SubmitPolicy::Sequential);
    }

    #[test]
    fn io_op_count_in_table1_band() {
        // expected data ops (reads+writes) across the three graphs
        let mut rng = SmallRng::seed_from_u64(2);
        let wf = build(&mut rng);
        let mut reads = 0u64;
        let mut writes = 0u64;
        for g in &wf.graphs {
            for t in &g.tasks {
                if let dtf_wms::Payload::Sim(a) = &t.payload {
                    for c in &a.io {
                        if c.write {
                            writes += 1;
                        } else {
                            reads += 1;
                        }
                    }
                }
            }
        }
        let total = reads + writes;
        // deterministic part: 3*1610 reads + 453 writes = 5283;
        // stragglers add a few
        assert!((5283..=5300).contains(&total), "I/O ops {total} outside Table I band");
        assert_eq!(writes, 453);
    }

    #[test]
    fn runs_vary_slightly_between_seeds() {
        let count = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let wf = build(&mut rng);
            wf.graphs
                .iter()
                .flat_map(|g| &g.tasks)
                .filter_map(|t| match &t.payload {
                    dtf_wms::Payload::Sim(a) => Some(a.io.len()),
                    _ => None,
                })
                .sum::<usize>()
        };
        let counts: Vec<usize> = (0..10).map(count).collect();
        let distinct: std::collections::HashSet<usize> = counts.iter().copied().collect();
        assert!(distinct.len() > 1, "straggler reads should vary across runs");
    }

    #[test]
    fn graphs_only_read_existing_ranges() {
        let mut rng = SmallRng::seed_from_u64(3);
        let wf = build(&mut rng);
        for g in &wf.graphs {
            for t in &g.tasks {
                if let dtf_wms::Payload::Sim(a) = &t.payload {
                    for c in &a.io {
                        if !c.write {
                            let (_, size, _) = &wf.dataset[c.file.0 as usize];
                            assert!(c.offset + c.size <= *size, "read past EOF in generator");
                        }
                    }
                }
            }
        }
    }
}
