//! Minimal offline stand-in for the `bytes` crate.
//!
//! `Bytes` is a cheaply cloneable, sliceable, immutable byte buffer backed
//! by an `Arc<[u8]>`; clones and `slice()` views share the same allocation.

#![allow(clippy::all)]

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation shared with anyone).
    pub fn new() -> Self {
        Self { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from_vec(bytes.to_vec())
    }

    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self::from_vec(bytes.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: Arc::from(v.into_boxed_slice()), start: 0, end }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A view of a sub-range, sharing the underlying allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from_vec(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Self::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_vec(s.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from_static(b"0123456789");
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), b"234");
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(s2.as_ref(), b"34");
    }

    #[test]
    fn equality_and_empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![1u8, 2]), Bytes::from_static(&[1, 2]));
    }
}
