//! Minimal offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Provides `RngCore`/`Rng`/`SeedableRng`, a `SmallRng` built on
//! xoshiro256++ (seeded through splitmix64, like rand's
//! `SeedableRng::seed_from_u64`), uniform `gen`/`gen_range`/`gen_bool`,
//! and `seq::SliceRandom` (Fisher–Yates shuffle, `choose`). Deterministic:
//! the same seed always produces the same stream.

#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------ core traits

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The user-facing convenience trait (blanket-implemented for every
/// `RngCore`).
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

// ---------------------------------------------------------- distributions

pub struct Standard;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

// -------------------------------------------------------------- gen_range

pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u: f64 = Standard.sample(rng);
                self.start + (self.end - self.start) * u as $t
            }
        }
    )*};
}
impl_range_float!(f32, f64);

// ------------------------------------------------------------------ rngs

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and high quality; matches the role (not
    /// the exact stream) of rand's `SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace only needs determinism, not ChaCha security.
    pub type StdRng = SmallRng;
}

// ------------------------------------------------------------------- seq

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    use super::RngCore;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }
}
