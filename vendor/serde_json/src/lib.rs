//! Minimal offline stand-in for `serde_json`.
//!
//! The actual value tree, parser, and printer live in the sibling `serde`
//! stub (which serializes straight into a JSON tree); this crate is the
//! familiar facade: `serde_json::{Value, json!, to_string, from_str, ...}`.

#![allow(clippy::all)]

pub use serde::json_impl::{
    encoded_size, from_slice, from_str, from_value, str_encoded_len, to_string, to_string_pretty,
    to_value, to_vec, write_str_to, write_value_to, Error, Number, Value,
};

pub type Result<T> = std::result::Result<T, Error>;

/// `serde_json::json!`: JSON literals with interpolated `Serialize`
/// expressions, via the usual token-tree muncher.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array muncher: accumulates built elements in [..] ----
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object muncher: key tts accumulate in (..) until the colon ----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- entry points ----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serialization cannot fail")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "a": 1,
            "b": [true, null, "s"],
            "c": {"nested": 2.5},
        });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"][0].as_bool(), Some(true));
        assert!(v["b"][1].is_null());
        assert_eq!(v["b"][2].as_str(), Some("s"));
        assert_eq!(v["c"]["nested"].as_f64(), Some(2.5));
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
