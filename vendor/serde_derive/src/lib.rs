//! Offline stand-in for `serde_derive`, written against the raw
//! `proc_macro` API (no syn/quote available in this container).
//!
//! Supports the shapes this workspace uses:
//! - named-field structs (serialized as JSON objects)
//! - tuple structs with one field (newtype: serialized transparently)
//! - tuple structs with several fields (serialized as arrays)
//! - enums of unit variants (`"Variant"`), one-field newtype variants
//!   (`{"Variant": value}`), and struct variants
//!   (`{"Variant": {fields...}}`) — serde's external tagging
//! - field attributes `#[serde(skip_serializing_if = "path")]` and
//!   `#[serde(default = "path")]`
//!
//! Generics are not supported (none of the workspace types need them).

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

struct Field {
    name: String,
    is_option: bool,
    skip_serializing_if: Option<String>,
    default_fn: Option<String>,
}

enum VariantShape {
    Unit,
    /// Exactly one unnamed payload field.
    Newtype,
    /// Named payload fields.
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Shape {
    Struct(Vec<Field>),
    /// Tuple struct; the count of unnamed fields.
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Field-level serde attributes we honor.
#[derive(Default)]
struct SerdeAttrs {
    skip_serializing_if: Option<String>,
    default_fn: Option<String>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // skip outer attributes and visibility
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // '#' + [...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize) stub does not support generics on {name}");
        }
    }

    let body = match &tokens[i] {
        TokenTree::Group(g) => g,
        other => panic!("expected body of {name}, found {other}"),
    };

    let shape = match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Shape::Struct(parse_named_fields(body.stream())),
        ("struct", Delimiter::Parenthesis) => Shape::Tuple(count_tuple_fields(body.stream())),
        ("enum", Delimiter::Brace) => Shape::Enum(parse_variants(body.stream())),
        _ => panic!("unsupported item shape for {name}"),
    };
    Item { name, shape }
}

/// Parse `#[serde(...)]` bracket-group content already stripped of `#`.
fn parse_serde_attr(group: &proc_macro::Group, out: &mut SerdeAttrs) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    // expect: serde ( ... )
    let is_serde =
        matches!(&inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return;
    }
    let Some(TokenTree::Group(args)) = inner.get(1) else { return };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        let key = match &args[j] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                j += 1;
                continue;
            }
        };
        if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
            (args.get(j + 1), args.get(j + 2))
        {
            if eq.as_char() == '=' {
                let raw = lit.to_string();
                let path = raw.trim_matches('"').to_string();
                match key.as_str() {
                    "skip_serializing_if" => out.skip_serializing_if = Some(path),
                    "default" => out.default_fn = Some(path),
                    other => panic!("unsupported serde attribute `{other}` in stub derive"),
                }
                j += 3;
                // skip separating comma
                if matches!(args.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    j += 1;
                }
                continue;
            }
        }
        panic!("unsupported serde attribute form `{key}` in stub derive");
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = SerdeAttrs::default();
        // attributes (doc comments, serde(...))
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                parse_serde_attr(g, &mut attrs);
            }
            i += 2;
        }
        // visibility
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let Some(TokenTree::Ident(fname)) = tokens.get(i) else { break };
        let name = fname.to_string();
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field {name}"
        );
        i += 1;
        // type tokens: scan to a comma at angle-bracket depth 0
        let mut depth = 0i32;
        let mut first_ty_ident = None;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                TokenTree::Ident(id) if first_ty_ident.is_none() => {
                    first_ty_ident = Some(id.to_string());
                }
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field {
            name,
            is_option: first_ty_ident.as_deref() == Some("Option"),
            skip_serializing_if: attrs.skip_serializing_if,
            default_fn: attrs.default_fn,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut any = false;
    for tok in stream {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => any = true,
        }
    }
    if any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // attributes / doc comments
        }
        let Some(TokenTree::Ident(vname)) = tokens.get(i) else { break };
        let name = vname.to_string();
        i += 1;
        let mut shape = VariantShape::Unit;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    assert!(
                        n == 1,
                        "stub derive supports only 1-field tuple variants ({name} has {n})"
                    );
                    shape = VariantShape::Newtype;
                }
                Delimiter::Brace => {
                    shape = VariantShape::Struct(parse_named_fields(g.stream()));
                }
                _ => {}
            }
            i += 1;
        }
        // skip an explicit discriminant if present: `= expr`
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            while let Some(tok) = tokens.get(i) {
                if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                i += 1;
            }
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = String::from("let mut m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                let insert = format!(
                    "m.insert(\"{n}\".to_string(), ::serde::Serialize::to_content(&self.{n}));\n",
                    n = f.name
                );
                if let Some(pred) = &f.skip_serializing_if {
                    s.push_str(&format!("if !({pred})(&self.{}) {{ {insert} }}\n", f.name));
                } else {
                    s.push_str(&insert);
                }
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_content(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{v}(inner) => {{ \
                         let mut m = ::std::collections::BTreeMap::new(); \
                         m.insert(\"{v}\".to_string(), ::serde::Serialize::to_content(inner)); \
                         ::serde::Value::Object(m) }}\n",
                        v = v.name
                    )),
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantShape::Struct(fields) => {
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "fm.insert(\"{n}\".to_string(), \
                                 ::serde::Serialize::to_content({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {{ \
                             let mut fm = ::std::collections::BTreeMap::new();\n{inserts}\
                             let mut m = ::std::collections::BTreeMap::new(); \
                             m.insert(\"{v}\".to_string(), ::serde::Value::Object(fm)); \
                             ::serde::Value::Object(m) }}\n",
                            v = v.name,
                            binds = bindings.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s = format!(
                "let m = v.as_object().ok_or_else(|| \
                 ::serde::Error::type_mismatch(\"{name}\", \"object\", v))?;\n"
            );
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                let missing = if let Some(default_fn) = &f.default_fn {
                    format!("{default_fn}()")
                } else if f.is_option {
                    "::std::option::Option::None".to_string()
                } else {
                    format!(
                        "return ::std::result::Result::Err(\
                         ::serde::Error::missing_field(\"{name}\", \"{n}\"))",
                        n = f.name
                    )
                };
                s.push_str(&format!(
                    "{n}: match m.get(\"{n}\") {{ \
                     ::std::option::Option::Some(x) => ::serde::Deserialize::from_content(x)?, \
                     ::std::option::Option::None => {missing} }},\n",
                    n = f.name
                ));
            }
            s.push_str("})");
            s
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(v)?))")
        }
        Shape::Tuple(n) => {
            let mut s = format!(
                "let a = v.as_array().ok_or_else(|| \
                 ::serde::Error::type_mismatch(\"{name}\", \"array\", v))?;\n\
                 if a.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n"
            );
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Deserialize::from_content(&a[{i}])?")).collect();
            s.push_str(&format!("::std::result::Result::Ok({name}({}))", elems.join(", ")));
            s
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut newtype_arms = String::new();
            for v in variants {
                match &v.shape {
                    VariantShape::Newtype => newtype_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_content(inner)?)),\n",
                        v = v.name
                    )),
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantShape::Struct(fields) => {
                        let mut field_inits = String::new();
                        for f in fields {
                            let missing = if let Some(default_fn) = &f.default_fn {
                                format!("{default_fn}()")
                            } else if f.is_option {
                                "::std::option::Option::None".to_string()
                            } else {
                                format!(
                                    "return ::std::result::Result::Err(\
                                     ::serde::Error::missing_field(\"{name}\", \"{n}\"))",
                                    n = f.name
                                )
                            };
                            field_inits.push_str(&format!(
                                "{n}: match fm.get(\"{n}\") {{ \
                                 ::std::option::Option::Some(x) => \
                                 ::serde::Deserialize::from_content(x)?, \
                                 ::std::option::Option::None => {missing} }},\n",
                                n = f.name
                            ));
                        }
                        newtype_arms.push_str(&format!(
                            "\"{v}\" => {{ \
                             let fm = inner.as_object().ok_or_else(|| \
                             ::serde::Error::type_mismatch(\"{name}\", \"object\", inner))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{\n{field_inits}}}) }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                 }}\n\
                 }} else if let ::std::option::Option::Some(m) = v.as_object() {{\n\
                 if m.len() != 1 {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"expected single-key object for enum {name}\")); }}\n\
                 let (tag, inner) = m.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n{newtype_arms}\
                 other => ::std::result::Result::Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                 }}\n\
                 }} else {{\n\
                 ::std::result::Result::Err(::serde::Error::type_mismatch(\"{name}\", \"string or object\", v))\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
