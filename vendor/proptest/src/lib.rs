//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the `proptest!` macro,
//! `any::<T>()`, range / tuple / string-regex / `Just` / `prop_map` /
//! `prop_oneof!` strategies, `proptest::collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Cases are generated from a seed derived from the test name, so runs
//! are deterministic. There is no shrinking: a failing case fails the
//! test with the plain assertion message.

#![allow(clippy::all)]

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

#[doc(hidden)]
pub fn rng_for(test_name: &str) -> SmallRng {
    // FNV-1a over the test name: deterministic per test, differs between
    // tests so sibling properties don't see correlated inputs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

// ------------------------------------------------------------- strategies

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, func: f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Strategy for "any value of T" via the `rand` Standard distribution.
pub struct Any<T>(PhantomData<T>);

pub fn any<T>() -> Any<T>
where
    rand::Standard: rand::Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    rand::Standard: rand::Distribution<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

/// `lo..hi` draws uniformly from the half-open range.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Tuples of strategies generate tuples of values.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// String strategies from a tiny regex subset: `[class]{m,n}` (or `{m}`),
/// where the class holds literal chars and `a-z` style ranges.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut SmallRng) -> String {
        let (alphabet, min, max) = parse_simple_regex(self).unwrap_or_else(|| {
            panic!("unsupported regex strategy {self:?} (stub supports `[class]{{m,n}}`)")
        });
        let len = rng.gen_range(min..=max);
        (0..len).map(|_| alphabet[rng.gen_range(0..alphabet.len())]).collect()
    }
}

fn parse_simple_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class = &rest[..close];
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            for c in lo..=hi {
                alphabet.push(char::from_u32(c)?);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return None;
    }
    let reps = &rest[close + 1..];
    if reps.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let reps = reps.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = match reps.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, min, max))
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    func: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        (self.func)(self.source.generate(rng))
    }
}

/// Uniform choice between boxed alternatives — built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<Box<dyn Fn(&mut SmallRng) -> T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn Fn(&mut SmallRng) -> T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        (self.arms[idx])(rng)
    }
}

pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// `Vec` strategy with a uniformly chosen length.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

// ----------------------------------------------------------------- macros

/// Property-test harness: runs the body `cases` times over generated
/// inputs. The `#[test]` attribute written inside the block is forwarded
/// verbatim, matching real proptest.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut proptest_rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                    { $body }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold. (The real
/// proptest retries; the stub simply runs one fewer case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(
                {
                    let strat = $strat;
                    Box::new(move |rng: &mut $crate::__SmallRng| {
                        $crate::Strategy::generate(&strat, rng)
                    }) as Box<dyn Fn(&mut $crate::__SmallRng) -> _>
                }
            ),+
        ])
    };
}

#[doc(hidden)]
pub use rand::rngs::SmallRng as __SmallRng;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, f in -2.0f64..2.0, s in "[a-z0-9]{0,12}") {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }

        #[test]
        fn tuples_and_vecs(ops in crate::collection::vec((0u8..4, any::<u8>()), 1..20)) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            prop_assert!(ops.iter().all(|(op, _)| *op < 4));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn oneof_and_map_cover_arms() {
        #[derive(Debug, Clone, PartialEq)]
        enum V {
            A,
            B(bool),
            S(String),
        }
        let strat =
            prop_oneof![Just(V::A), any::<bool>().prop_map(V::B), "[a-z_]{1,20}".prop_map(V::S),];
        let mut rng = crate::rng_for("oneof_and_map_cover_arms");
        let mut saw = [false; 3];
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                V::A => saw[0] = true,
                V::B(_) => saw[1] = true,
                V::S(s) => {
                    assert!((1..=20).contains(&s.len()));
                    saw[2] = true;
                }
            }
        }
        assert!(saw.iter().all(|&b| b), "all arms exercised");
    }
}
