//! Minimal offline stand-in for `criterion`.
//!
//! Provides the same surface the workspace benches use
//! (`criterion_group!` / `criterion_main!` / `Criterion` /
//! `benchmark_group` / `Bencher::iter` / `Throughput`) with a simple
//! wall-clock measurement loop: warm up, pick an iteration count that
//! targets a fixed measurement window, then report the mean time per
//! iteration (and throughput when configured).

#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
const MAX_ITERS: u64 = 100_000;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(&full, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibration pass: one iteration to estimate the per-iter cost.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters =
        (MEASURE_WINDOW.as_nanos() / per_iter.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;

    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;

    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            format!("  ({rate:.0} elem/s)")
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean_ns / 1e9) / (1024.0 * 1024.0);
            format!("  ({rate:.1} MiB/s)")
        }
        None => String::new(),
    };
    println!("{name:<60} {:>14}/iter  x{iters}{extra}", format_ns(mean_ns));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(10).throughput(Throughput::Elements(100));
        g.bench_function("inner", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }
}
