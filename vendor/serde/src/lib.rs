//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's format-generic visitor data model, this stub
//! serializes directly into a JSON value tree ([`Value`]) — the only
//! format the workspace uses (via the sibling `serde_json` facade, which
//! re-exports the tree plus the text parser/printer defined here).
//!
//! `#[derive(Serialize, Deserialize)]` works through the sibling
//! `serde_derive` stub and targets the [`Serialize::to_content`] /
//! [`Deserialize::from_content`] methods below.

#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::{Error, Number, Value};

#[doc(hidden)]
pub mod json_impl {
    //! Machinery re-exported by the `serde_json` facade crate.
    pub use crate::value::{
        encoded_size, from_slice, from_str, from_value, str_encoded_len, to_string,
        to_string_pretty, to_value, to_vec, write_str_to, write_value_to, Error, Number, Value,
    };
}

/// Serialize into the JSON value tree.
pub trait Serialize {
    fn to_content(&self) -> Value;
}

/// Deserialize from the JSON value tree.
pub trait Deserialize: Sized {
    fn from_content(v: &Value) -> Result<Self, Error>;
}

// ----------------------------------------------------- blanket references

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(v: &Value) -> Result<Self, Error> {
        T::from_content(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}

// -------------------------------------------------------------- integers

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_content(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::type_mismatch(stringify!($t), "unsigned integer", v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_content(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::type_mismatch(stringify!($t), "integer", v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

// ---------------------------------------------------------------- floats

impl Serialize for f64 {
    fn to_content(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::F64(*self))
        } else {
            // JSON has no NaN/Inf; serde_json renders them as null
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_content(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::type_mismatch("f64", "number", v))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Value {
        (*self as f64).to_content()
    }
}

impl Deserialize for f32 {
    fn from_content(v: &Value) -> Result<Self, Error> {
        f64::from_content(v).map(|f| f as f32)
    }
}

// -------------------------------------------------------- bool / strings

impl Serialize for bool {
    fn to_content(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", "boolean", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_content(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("String", "string", other)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(v: &Value) -> Result<Self, Error> {
        let s = String::from_content(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

// ---------------------------------------------------- Option / containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Value {
        match self {
            Some(inner) => inner.to_content(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_content).collect(),
            other => Err(Error::type_mismatch("Vec", "array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Value {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_content(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

/// Maps: string-keyed maps serialize as JSON objects; any other key type
/// serializes as an array of `[key, value]` pairs (real serde_json would
/// stringify the key — the pair form round-trips without key parsing).
impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_content(&self) -> Value {
        let pairs: Vec<(Value, Value)> =
            self.iter().map(|(k, v)| (k.to_content(), v.to_content())).collect();
        if pairs.iter().all(|(k, _)| matches!(k, Value::String(_))) {
            Value::Object(
                pairs
                    .into_iter()
                    .map(|(k, v)| match k {
                        Value::String(s) => (s, v),
                        _ => unreachable!("checked all-string keys"),
                    })
                    .collect(),
            )
        } else {
            Value::Array(pairs.into_iter().map(|(k, v)| Value::Array(vec![k, v])).collect())
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_content(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| {
                    let key = K::from_content(&Value::String(k.clone()))?;
                    Ok((key, V::from_content(v)?))
                })
                .collect(),
            Value::Array(pairs) => pairs
                .iter()
                .map(|pair| {
                    let (k, v) = <(Value, Value)>::from_content(pair)?;
                    Ok((K::from_content(&k)?, V::from_content(&v)?))
                })
                .collect(),
            other => Err(Error::type_mismatch("BTreeMap", "object or pair array", other)),
        }
    }
}

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn to_content(&self) -> Value {
        // sort for deterministic output, matching BTreeMap/serde_json
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(entries.into_iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_content(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => {
                m.iter().map(|(k, v)| V::from_content(v).map(|v| (k.clone(), v))).collect()
            }
            other => Err(Error::type_mismatch("HashMap", "object", other)),
        }
    }
}

// ----------------------------------------------------------------- tuples

macro_rules! impl_serde_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::type_mismatch("tuple", "array", v))?;
                let expected = [$($idx),+].len();
                if a.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, got {}",
                        a.len()
                    )));
                }
                Ok(($($t::from_content(&a[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// Value itself round-trips trivially.
impl Serialize for Value {
    fn to_content(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_content(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
