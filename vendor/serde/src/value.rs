//! The JSON value tree, text parser/printer, and conversion entry points.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Deserialize, Serialize};

/// A JSON number. Comparisons are numeric across representations, so a
/// value that round-trips through text (`1.0` → `"1"` → `U64(1)`) still
/// compares equal to the original.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U64(n) => Some(n as f64),
            Number::I64(n) => Some(n as f64),
            Number::F64(n) => Some(n),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            _ => {}
        }
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => return a == b,
            _ => {}
        }
        self.as_f64() == other.as_f64()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty => $variant:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::$variant(*other as _))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_eq_num!(u8 => U64, u16 => U64, u32 => U64, u64 => U64, usize => U64,
                   i8 => I64, i16 => I64, i32 => I64, i64 => I64, isize => I64,
                   f32 => F64, f64 => F64);

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&write_compact(self))
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::Null
    }
}

// ------------------------------------------------------------------ error

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    pub fn type_mismatch(target: &str, expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Self { msg: format!("invalid type for {target}: expected {expected}, found {kind}") }
    }

    pub fn missing_field(target: &str, field: &str) -> Self {
        Self { msg: format!("missing field `{field}` of {target}") }
    }

    pub fn unknown_variant(target: &str, variant: &str) -> Self {
        Self { msg: format!("unknown variant `{variant}` of {target}") }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

// ------------------------------------------------------------ conversions

pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_content())
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_content(&value)
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write_compact(&value.to_content()))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_content(), 0, &mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at offset {}", p.pos)));
    }
    T::from_content(&v)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// --------------------------------------------------------------- printing

/// Stream the compact JSON escape of `s` (including the surrounding
/// quotes) into any `fmt::Write` sink — a `String`, a byte counter, or a
/// hasher adapter — producing exactly the bytes [`to_string`] would.
pub fn write_str_to<W: fmt::Write>(s: &str, out: &mut W) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Byte length of [`write_str_to`]'s output (quotes and escapes included),
/// computed without writing anywhere.
pub fn str_encoded_len(s: &str) -> usize {
    let mut n = 2;
    for c in s.chars() {
        n += match c {
            '"' | '\\' | '\n' | '\r' | '\t' => 2,
            c if (c as u32) < 0x20 => 6,
            c => c.len_utf8(),
        };
    }
    n
}

fn write_escaped<W: fmt::Write>(s: &str, out: &mut W) {
    write_str_to(s, out).expect("JSON sink must be infallible");
}

fn write_number<W: fmt::Write>(n: &Number, out: &mut W) {
    match *n {
        Number::U64(v) => write!(out, "{v}"),
        Number::I64(v) => write!(out, "{v}"),
        Number::F64(v) => {
            if v.is_finite() {
                let s = format!("{v}");
                // keep floats recognizably floats, serde_json-style
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    write!(out, "{s}.0")
                } else {
                    write!(out, "{s}")
                }
            } else {
                out.write_str("null")
            }
        }
    }
    .expect("JSON sink must be infallible")
}

fn write_compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

/// Stream the compact JSON rendering of `v` into any `fmt::Write` sink,
/// producing exactly the bytes [`to_string`] would allocate.
pub fn write_value_to<W: fmt::Write>(v: &Value, out: &mut W) -> fmt::Result {
    write_value(v, out);
    Ok(())
}

/// A `fmt::Write` sink that only counts bytes.
struct ByteCounter(usize);

impl fmt::Write for ByteCounter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0 += s.len();
        Ok(())
    }
}

/// Exact byte length of the compact JSON rendering of `v`
/// (`to_string(v).len()`), computed through a counting sink — no
/// intermediate `String`.
pub fn encoded_size(v: &Value) -> usize {
    let mut counter = ByteCounter(0);
    write_value(v, &mut counter);
    counter.0
}

fn write_value<W: fmt::Write>(v: &Value, out: &mut W) {
    let infallible = |r: fmt::Result| r.expect("JSON sink must be infallible");
    match v {
        Value::Null => infallible(out.write_str("null")),
        Value::Bool(b) => infallible(out.write_str(if *b { "true" } else { "false" })),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            infallible(out.write_char('['));
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    infallible(out.write_char(','));
                }
                write_value(item, out);
            }
            infallible(out.write_char(']'));
        }
        Value::Object(m) => {
            infallible(out.write_char('{'));
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    infallible(out.write_char(','));
                }
                write_escaped(k, out);
                infallible(out.write_char(':'));
                write_value(val, out);
            }
            infallible(out.write_char('}'));
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at offset {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // surrogate pairs not supported by the stub;
                            // map unpaired surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_roundtrip() {
        let src = r#"{"a": [1, -2, 3.5], "b": {"nested": true}, "s": "x\ny", "n": null}"#;
        let v: Value = from_str(src).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["b"]["nested"].as_bool(), Some(true));
        assert_eq!(v["s"].as_str(), Some("x\ny"));
        assert!(v["n"].is_null());
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn number_equality_is_numeric() {
        assert_eq!(Number::U64(1), Number::I64(1));
        assert_ne!(Number::U64(1), Number::I64(-1));
        let float_one: Value = from_str("1").unwrap();
        assert_eq!(float_one, Value::Number(Number::F64(1.0)));
    }

    #[test]
    fn encoded_size_matches_rendered_length() {
        let cases = [
            r#"{"a": [1, -2, 3.5], "b": {"nested": true}, "s": "x\ny\t\"q\"", "n": null}"#,
            r#"[1e-20, 2.0, 1e300, 0.1, -0.0]"#,
            r#""control""#,
            r#"{}"#,
            r#"[]"#,
        ];
        for src in cases {
            let v: Value = from_str(src).unwrap();
            let rendered = to_string(&v).unwrap();
            assert_eq!(encoded_size(&v), rendered.len(), "size of {src}");
            let mut streamed = String::new();
            write_value_to(&v, &mut streamed).unwrap();
            assert_eq!(streamed, rendered, "streamed bytes of {src}");
        }
        let tricky = String::from("a\"b\\c\nd\u{1}é");
        assert_eq!(str_encoded_len(&tricky), to_string(&tricky).unwrap().len());
        let mut s = String::new();
        write_str_to("a\"b", &mut s).unwrap();
        assert_eq!(s, "\"a\\\"b\"");
    }

    #[test]
    fn garbage_fails() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
