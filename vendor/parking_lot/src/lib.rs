//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Provides the subset of the API this workspace uses — `Mutex`, `RwLock`,
//! and `Condvar` with `parking_lot`-style (non-poisoning, `&mut guard`)
//! signatures — implemented over `std::sync`. Poisoning is swallowed: a
//! panicked holder does not poison the lock for everyone else, matching
//! parking_lot semantics.

#![allow(clippy::all)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

// ---------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait* can temporarily take the std guard out.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard { guard: Some(e.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard present")
    }
}

// -------------------------------------------------------------- Condvar

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self { inner: sync::Condvar::new() }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }
}

// --------------------------------------------------------------- RwLock

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { guard: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { guard: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            *m2.lock() = 7;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g != 7 {
            let r = cv.wait_for(&mut g, Duration::from_millis(50));
            let _ = r.timed_out();
        }
        assert_eq!(*g, 7);
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
