//! # dtf — Distributed Task-based workflow characterization Framework
//!
//! Facade crate re-exporting the public API of the whole workspace, a Rust
//! reproduction of *"Performance Characterization and Provenance of
//! Distributed Task-based Workflows on HPC Platforms"* (SC 2024).
//!
//! * [`core`] — identifiers, event & provenance schema, clocks, statistics.
//! * [`platform`] — simulated HPC platform (cluster, network, Lustre-like PFS).
//! * [`mofka`] — event streaming service used to aggregate instrumentation.
//! * [`store`] — durable segmented event-log and WAL-backed KV persistence
//!   (the storage layer behind Mofka's durable mode), with crash recovery.
//! * [`darshan`] — I/O characterization (POSIX counters + DXT tracing).
//! * [`wms`] — the Dask.distributed-analog workflow management system.
//! * [`proxystore`] — ProxyStore-analog out-of-band data plane: task
//!   outputs above a threshold publish blob-backed manifests and travel as
//!   small typed `ProxyRef`s through the scheduler channel.
//! * [`chaos`] — deterministic chaos harness: seeded fault schedules,
//!   invariant oracles, replayable campaigns.
//! * [`perfrecup`] — multi-source analysis and view engine.
//! * [`workflows`] — the paper's three workloads and the campaign driver.
//!
//! See `examples/quickstart.rs` for a minimal end-to-end characterization.

pub use dtf_chaos as chaos;
pub use dtf_core as core;
pub use dtf_darshan as darshan;
pub use dtf_mofka as mofka;
pub use dtf_perfrecup as perfrecup;
pub use dtf_platform as platform;
pub use dtf_proxystore as proxystore;
pub use dtf_store as store;
pub use dtf_wms as wms;
pub use dtf_workflows as workflows;
